"""Command-line file erasure tool (the Jerasure encoder/decoder analog).

Splits a file into ``k`` data strip-files plus P and Q parity files;
any two of the ``k+2`` pieces may be lost and the original file still
reassembles bit-perfectly.

::

    python -m repro.cli encode big.tar --k 6 --out-dir shards/
    rm shards/big.tar.d2 shards/big.tar.q       # lose two pieces
    python -m repro.cli decode shards/big.tar.manifest.json -o restored.tar
    python -m repro.cli verify shards/big.tar.manifest.json
    python -m repro.cli info --k 10             # complexity summary

A JSON *manifest* records the code configuration, original length and
per-piece SHA-256 digests, so decoding detects silent corruption of
individual pieces (and, for Liberation codes, can locate/repair a
single corrupted piece via the paper's error-correction procedure).

The distributed stripe store (:mod:`repro.cluster`) is operated from
here too:

::

    python -m repro.cli serve --column 0 --stripes 64 --k 4   # one per column
    python -m repro.cli stats 127.0.0.1:9100 127.0.0.1:9101   # metrics view
    python -m repro.cli cluster scrub 127.0.0.1:9100 ... --stripes 64
    python -m repro.cli cluster heal 127.0.0.1:9100 ... --rebuild 2 --spare 127.0.0.1:9200

And the deterministic simulation / differential-fuzzing harness
(:mod:`repro.sim`):

::

    python -m repro.cli sim fuzz --seed 7 --duration 600      # hunt divergences
    python -m repro.cli sim replay repro-1234.json            # re-run a repro
    python -m repro.cli sim run --seed 42                     # one scenario

And the static analyzer (:mod:`repro.analysis.static`) -- symbolic
correctness proofs for every schedule, the XOR-optimality audit against
the paper's ``k-1`` bound, and the project sim-seam AST lint:

::

    python -m repro.cli analyze --all-families --p 5,7,11,13
    python -m repro.cli analyze --families liberation-optimal --json report.json

And the observability layer (:mod:`repro.obs`) -- span traces of real
encodes/decodes (Chrome ``trace_event`` JSON, loadable in Perfetto) and
the benchmark-regression gate:

::

    python -m repro.cli trace --k 11 --p 11 --out trace.json
    python -m repro.cli bench regress --tolerance 0.15
    python -m repro.cli stats 127.0.0.1:9100 --prometheus
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import pathlib
import sys

import numpy as np

from repro.codes import available_codes, make_code
from repro.utils.words import WORD_DTYPE

__all__ = ["main"]

MANIFEST_SUFFIX = ".manifest.json"


def _sha256(path: pathlib.Path) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _piece_names(stem: str, k: int) -> list[str]:
    return [f"{stem}.d{j}" for j in range(k)] + [f"{stem}.p", f"{stem}.q"]


def _build_code(meta: dict):
    kwargs = {"element_size": meta["element_size"]}
    if meta.get("p"):
        kwargs["p"] = meta["p"]
    if meta["code"] == "reed-solomon":
        kwargs["rows"] = meta["rows"]
    return make_code(meta["code"], meta["k"], **kwargs)


def cmd_encode(args) -> int:
    src = pathlib.Path(args.file)
    data = src.read_bytes()
    code = make_code(args.code, args.k, element_size=args.element_size,
                     **({"p": args.p} if args.p else {}))
    out_dir = pathlib.Path(args.out_dir or src.parent)
    out_dir.mkdir(parents=True, exist_ok=True)

    stripe_bytes = code.data_bytes
    n_stripes = max(1, -(-len(data) // stripe_bytes))
    padded = data.ljust(n_stripes * stripe_bytes, b"\0")

    pieces = [bytearray() for _ in range(code.n_cols)]
    buf = code.alloc_stripe()
    for s in range(n_stripes):
        chunk = np.frombuffer(
            padded[s * stripe_bytes : (s + 1) * stripe_bytes], dtype=np.uint8
        )
        for j in range(code.k):
            strip = chunk[j * code.strip_bytes : (j + 1) * code.strip_bytes]
            buf[j] = strip.view(WORD_DTYPE).reshape(code.rows, -1)
        code.encode(buf)
        for col in range(code.n_cols):
            pieces[col] += buf[col].tobytes()

    stem = out_dir / src.name
    names = _piece_names(str(stem), code.k)
    digests = {}
    for name, blob in zip(names, pieces):
        pathlib.Path(name).write_bytes(bytes(blob))
        digests[pathlib.Path(name).name] = hashlib.sha256(bytes(blob)).hexdigest()

    manifest = {
        "code": code.name,
        "k": code.k,
        "p": getattr(code, "p", None),
        "rows": code.rows,
        "element_size": code.element_size,
        "file_name": src.name,
        "file_size": len(data),
        "n_stripes": n_stripes,
        "pieces": digests,
        "file_sha256": hashlib.sha256(data).hexdigest(),
    }
    mpath = pathlib.Path(str(stem) + MANIFEST_SUFFIX)
    mpath.write_text(json.dumps(manifest, indent=2))
    print(f"encoded {src} -> {code.n_cols} pieces + {mpath.name} "
          f"({n_stripes} stripes, {code.name})")
    return 0


def _load_pieces(meta: dict, mdir: pathlib.Path):
    """Return (arrays-or-None per column, missing column list, corrupt list)."""
    stem = mdir / meta["file_name"]
    names = _piece_names(str(stem), meta["k"])
    strips, missing, corrupt = [], [], []
    for col, name in enumerate(names):
        path = pathlib.Path(name)
        if not path.exists():
            strips.append(None)
            missing.append(col)
            continue
        blob = path.read_bytes()
        if hashlib.sha256(blob).hexdigest() != meta["pieces"][path.name]:
            corrupt.append(col)
        strips.append(np.frombuffer(blob, dtype=WORD_DTYPE))
    return names, strips, missing, corrupt


def cmd_decode(args) -> int:
    mpath = pathlib.Path(args.manifest)
    meta = json.loads(mpath.read_text())
    code = _build_code(meta)
    names, strips, missing, corrupt = _load_pieces(meta, mpath.parent)

    erased = sorted(set(missing) | set(corrupt))
    if len(erased) > 2:
        print(f"error: {len(erased)} pieces missing/corrupt ({erased}); "
              "RAID-6 tolerates at most 2", file=sys.stderr)
        return 1
    if corrupt:
        print(f"treating corrupted pieces {corrupt} as erasures")

    n_stripes = meta["n_stripes"]
    strip_words = code.strip_bytes // 8
    out = bytearray()
    buf = code.alloc_stripe()
    recovered = [bytearray() for _ in range(code.n_cols)]
    for s in range(n_stripes):
        for col in range(code.n_cols):
            if col in erased:
                buf[col] = 0
            else:
                seg = strips[col][s * strip_words : (s + 1) * strip_words]
                buf[col] = seg.reshape(code.rows, -1)
        if erased:
            code.decode(buf, erased)
            for col in erased:
                recovered[col] += buf[col].tobytes()
        out += buf[: code.k].tobytes()

    data = bytes(out[: meta["file_size"]])
    if hashlib.sha256(data).hexdigest() != meta["file_sha256"]:
        print("error: reassembled file fails its checksum", file=sys.stderr)
        return 1
    pathlib.Path(args.output).write_bytes(data)
    print(f"decoded {meta['file_name']} -> {args.output} "
          f"({len(erased)} pieces reconstructed)")
    if args.repair and erased:
        for col in erased:
            pathlib.Path(names[col]).write_bytes(bytes(recovered[col]))
        print(f"repaired piece files: {[pathlib.Path(names[c]).name for c in erased]}")
    return 0


def cmd_verify(args) -> int:
    mpath = pathlib.Path(args.manifest)
    meta = json.loads(mpath.read_text())
    _names, _strips, missing, corrupt = _load_pieces(meta, mpath.parent)
    if not missing and not corrupt:
        print("all pieces present and checksums match")
        return 0
    for col in missing:
        print(f"missing: column {col}")
    for col in corrupt:
        print(f"corrupt: column {col}")
    recoverable = len(set(missing) | set(corrupt)) <= 2
    print("recoverable" if recoverable else "NOT recoverable (beyond RAID-6)")
    return 0 if recoverable else 1


def cmd_info(args) -> int:
    from repro.bench.complexity import table1_rows
    from repro.bench.report import format_table

    print(format_table(
        table1_rows(k=args.k),
        title=f"RAID-6 code characteristics at k = {args.k} (measured)",
    ))
    print("available codes:", ", ".join(available_codes()))
    return 0


def cmd_serve(args) -> int:
    from repro.cluster.node import StripNode

    code = make_code(args.code, args.k, element_size=args.element_size,
                     **({"p": args.p} if args.p else {}))
    if not 0 <= args.column < code.n_cols:
        print(f"error: --column must be in [0, {code.n_cols}) for k={code.k} "
              f"(columns 0..{code.k - 1} data, {code.p_col} P, {code.q_col} Q)",
              file=sys.stderr)
        return 2
    strip_words = code.rows * (code.element_size // 8)

    async def run() -> int:
        node = StripNode(
            args.column, args.stripes, strip_words, host=args.host, port=args.port
        )
        host, port = await node.start()
        print(f"strip node: column {args.column} of {code.name} k={code.k}, "
              f"{args.stripes} strips x {strip_words * 8} B, "
              f"listening on {host}:{port}", flush=True)
        if args.port_file:
            # Written only once the socket is bound, so orchestrators
            # (and the test suite) can wait on it instead of polling.
            # One-shot tiny write before any request is served: no task
            # is in flight for the blocking call to stall.
            path = pathlib.Path(args.port_file)
            path.write_text(str(port))  # conc: ok[ASY102] pre-serve startup write
        await node.serve_until_shutdown()
        print(f"strip node on {host}:{port} shut down")
        return 0

    return asyncio.run(run())


def _parse_address(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address {spec!r} is not HOST:PORT")
    return host, int(port)


def cmd_stats(args) -> int:
    from repro.bench.report import format_table
    from repro.cluster.client import send_verb
    from repro.obs.metrics import MetricsRegistry

    async def run() -> int:
        rc = 0
        for spec in args.nodes:
            address = _parse_address(spec)
            try:
                if args.prometheus:
                    reply, payload = await asyncio.wait_for(
                        send_verb(address, "metrics"), args.timeout
                    )
                else:
                    reply, _ = await asyncio.wait_for(
                        send_verb(address, "stats"), args.timeout
                    )
            except (OSError, EOFError, asyncio.TimeoutError, TimeoutError) as exc:
                print(f"node {spec}: unreachable ({type(exc).__name__})")
                rc = 1
                continue
            if args.prometheus:
                # Raw text exposition, ready to paste into a scrape probe.
                print(f"# node {spec} (column {reply.get('column')})")
                sys.stdout.write(payload.decode())
            else:
                rows = [{"metric": "column", "value": reply.get("column")}]
                rows += MetricsRegistry.rows(reply.get("stats", {}))
                rows += [
                    {"metric": f"disk_{key}", "value": value}
                    for key, value in reply.get("disk", {}).items()
                ]
                print(format_table(rows, title=f"node {spec}"))
            if args.shutdown:
                await send_verb(address, "shutdown")
                print(f"node {spec}: shutdown acknowledged")
        return rc

    return asyncio.run(run())


def _parse_int_list(spec: str) -> list[int]:
    try:
        return [int(tok) for tok in spec.split(",") if tok.strip()]
    except ValueError:
        raise SystemExit(f"error: {spec!r} is not a comma-separated integer list")


def cmd_analyze(args) -> int:
    """Exit codes are stable for CI: 0 clean, 1 findings, 2 tool error."""
    from repro.analysis.concurrency import run_concurrency_analysis
    from repro.analysis.static import lint_project, run_analysis
    from repro.analysis.static.audit import default_families
    from repro.bench.report import format_table

    primes = _parse_int_list(args.p)
    ks = _parse_int_list(args.k) if args.k else None

    run_proofs = not args.concurrency
    run_lint = not (args.no_ast_lint or args.concurrency)
    run_conc = args.concurrency or not args.no_concurrency

    payload: dict = {}
    problems = 0
    try:
        report = None
        if run_proofs:
            if args.families:
                families = [
                    tok.strip() for tok in args.families.split(",") if tok.strip()
                ]
            else:
                families = list(default_families())

            def progress(what: str) -> None:
                if args.verbose:
                    print(f"  proving {what}...", flush=True)

            report = run_analysis(families, primes, ks=ks, on_progress=progress)
            print(format_table(
                report.summary_rows(),
                title=f"static analysis: {report.n_proofs} schedules proved "
                      f"over p in {{{args.p}}}",
            ))
            for failure in report.failures():
                print(f"FAIL: {failure}")
            payload.update(report.to_dict())
            problems += len(report.failures())

        ast_findings = lint_project() if run_lint else []
        for finding in ast_findings:
            print(f"AST: {finding}")
        payload["ast_lint"] = [str(f) for f in ast_findings]
        problems += len(ast_findings)

        if run_conc:
            conc = run_concurrency_analysis()
            for finding in conc.findings:
                print(f"CONC: {finding}")
            counts = ", ".join(f"{k}={v}" for k, v in conc.per_pass.items())
            print(f"concurrency passes: {counts}; "
                  f"{len(conc.findings)} finding(s), "
                  f"{len(conc.baselined)} baselined")
            payload["concurrency"] = conc.to_dict()
            problems += len(conc.findings)
    except (ValueError, OSError) as exc:
        # Exit 2, not 1: the tool itself could not run to completion
        # (unknown family, malformed baseline file, unreadable tree) --
        # a plumbing problem, not an analysis verdict.
        print(f"analyze ERROR: {exc}", file=sys.stderr)
        return 2

    ok = problems == 0
    payload["ok"] = payload.get("ok", True) and ok
    payload["exit_code"] = 0 if ok else 1
    if args.json:
        text = json.dumps(payload, indent=2)
        if args.json == "-":
            print(text)
        else:
            pathlib.Path(args.json).write_text(text)
            print(f"report written to {args.json}")

    print(
        "analysis clean: every check passed"
        if ok
        else f"analysis FAILED: {problems} finding(s)"
    )
    return 0 if ok else 1


def cmd_trace(args) -> int:
    from repro.bench.report import format_table
    from repro.bench.wallclock import wall_now
    from repro.obs.tracing import Tracer, use_tracer, write_chrome_trace, write_jsonl

    families = [tok.strip() for tok in args.codes.split(",") if tok.strip()]
    erasures = _parse_int_list(args.erasures) if args.erasures else None
    tracer = Tracer(now=wall_now)

    with use_tracer(tracer):
        for name in families:
            code = make_code(name, args.k, element_size=args.element_size,
                             **({"p": args.p} if args.p else {}))
            buf = code.alloc_stripe()
            # Deterministic non-zero payload (no ambient RNG in the CLI).
            flat = buf[: code.k].reshape(-1)
            flat[:] = np.arange(1, flat.size + 1, dtype=flat.dtype)
            flat *= np.asarray(0x9E3779B97F4A7C15, dtype=flat.dtype)
            for _ in range(args.repeat):
                code.encode(buf)
            if erasures is not None:
                for _ in range(args.repeat):
                    work = buf.copy()
                    for col in erasures:
                        work[col] = 0
                    code.decode(work, erasures)

    out = write_chrome_trace(args.out, tracer.spans)
    print(f"chrome trace: {out} ({len(tracer.spans)} spans; open in "
          "Perfetto / chrome://tracing)")
    if args.jsonl:
        print(f"jsonl trace: {write_jsonl(args.jsonl, tracer.spans)}")

    rows = []
    for s in tracer.spans:
        if s.name not in ("code.encode", "code.decode", "engine.compile"):
            continue
        rows.append({
            "span": s.name,
            "code": s.attrs.get("code", "-"),
            "xors": s.attrs.get("xors"),
            "cache": s.attrs.get("cache", "-"),
            "ms": round((s.duration or 0.0) * 1e3, 3),
            "gbps": s.attrs.get("gbps", "-"),
        })
    print(format_table(
        rows,
        title=f"schedule spans: k={args.k} element={args.element_size}B "
              f"x{args.repeat}",
    ))
    print(f"trace digest: {tracer.digest()}")
    return 0


def cmd_bench_regress(args) -> int:
    from repro.bench.report import format_table
    from repro.obs.regress import PerfFileError, regress

    def progress(what: str) -> None:
        print(f"  measuring {what}...", flush=True)

    try:
        deltas, current, baseline = regress(
            out_path=args.out,
            baseline_path=args.baseline,
            tolerance=args.tolerance,
            quick=args.quick,
            on_progress=progress,
        )
    except PerfFileError as exc:
        # Exit 2, not 1: the baseline file is broken (missing, empty,
        # or malformed), which is a CI-plumbing problem, not a measured
        # performance regression.  Nothing was measured or overwritten.
        print(f"bench gate ERROR: {exc}")
        return 2
    n = len(current["metrics"])
    if baseline is None:
        print(f"no baseline found: wrote {args.out} with {n} metrics "
              "(first run establishes the trajectory)")
        if not deltas:
            return 0
    # Rows suffixed "[floor]" compare against an absolute minimum (the
    # kernel data plane's >= 5x target), not the previous run; they are
    # present even on a first run.
    print(format_table(
        [d.row() for d in deltas],
        title=f"bench regression gate (tolerance {args.tolerance:.0%})",
    ))
    regressed = [d for d in deltas if d.regressed]
    if regressed:
        for d in regressed:
            print(f"REGRESSED: {d.metric}: {d.baseline:.4f} -> {d.current:.4f} "
                  f"({d.direction} is better)")
        print(f"bench gate FAILED: {len(regressed)} of {len(deltas)} metrics "
              f"regressed beyond {args.tolerance:.0%}")
        return 1
    print(f"bench gate clean: {len(deltas)} metrics within {args.tolerance:.0%} "
          f"of baseline/floors; {args.out} updated")
    return 0


def cmd_gateway_bench(args) -> int:
    from repro.bench.report import format_table
    from repro.gateway.bench import WorkloadConfig, run_sim_bench, run_socket_bench

    cfg = WorkloadConfig(
        seed=args.seed,
        n_objects=args.objects,
        object_size=args.object_size,
        n_ops=args.ops,
        rate=args.rate,
        read_fraction=args.read_fraction,
        update_bytes=args.update_bytes,
        zipf_theta=args.zipf_theta,
    )
    if args.mode == "sim":
        report = run_sim_bench(
            cfg,
            n_stripes=args.stripes,
            service_latency=args.service_latency,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            queue_timeout=args.queue_timeout,
        )
    else:
        report = run_socket_bench(
            cfg,
            n_stripes=args.stripes,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            queue_timeout=args.queue_timeout,
        )

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    kind = "virtual" if report.mode == "sim" else "wall"
    print(format_table(
        report.rows(),
        title=f"gateway workload ({report.mode}): seed={cfg.seed} "
              f"objects={cfg.n_objects} ops={cfg.n_ops} rate={cfg.rate:g}/s",
    ))
    print(f"completed {report.ok} ok, {report.shed} shed, "
          f"{report.errors} errors in {report.elapsed_s:.4f}s {kind} time "
          f"({report.throughput_ops:.1f} ops/s)")
    print(f"trace digest: {report.digest}"
          + ("" if report.mode == "sim" else " (op stream only)"))
    if args.perf:
        from repro.obs.regress import DEFAULT_PERF_PATH, load_perf, save_perf

        path = args.perf if args.perf is not True else DEFAULT_PERF_PATH
        payload = load_perf(path) or {"schema": 1, "metrics": {}}
        payload.setdefault("metrics", {})
        payload["metrics"][f"gateway_ops/{report.mode}/cli"] = {
            "value": report.throughput_ops, "unit": "ops/s", "direction": "higher",
        }
        save_perf(payload, path)
        print(f"merged gateway_ops/{report.mode}/cli into {path}")
    return 0


def cmd_sim_fuzz(args) -> int:
    from repro.sim.differential import fuzz

    def progress(done, _record):
        if args.progress_every and done % args.progress_every == 0:
            print(f"  {done} cases in agreement...", flush=True)

    failure = fuzz(
        seed=args.seed,
        max_cases=args.cases,
        time_budget=args.duration,
        shrink=not args.no_shrink,
        chaos=args.chaos,
        objects=args.objects,
        membership=args.membership,
        on_progress=progress,
    )
    if failure is None:
        print(f"fuzz clean (seed base {args.seed})")
        return 0
    out = pathlib.Path(args.out or f"sim-repro-{failure.seed}.json")
    failure.save(out)
    print(f"DIVERGENCE after {failure.cases_run} cases (seed {failure.seed}):")
    print(f"  {failure.error}")
    print(f"  shrunk repro written to {out}")
    print(f"  replay with: python -m repro.cli sim replay {out}")
    return 1


def cmd_sim_replay(args) -> int:
    from repro.sim.differential import replay_file

    error = replay_file(args.file)
    if error is None:
        print(f"{args.file}: no divergence -- the recorded failure no longer "
              "reproduces")
        return 0
    print(f"{args.file}: still diverges:")
    print(f"  {error}")
    return 1


def cmd_sim_run(args) -> int:
    from repro.sim.scenario import generate_scenario, run_scenario

    scenario = generate_scenario(args.seed, chaos=args.chaos,
                                 objects=args.objects,
                                 elastic=args.membership)
    result = run_scenario(scenario)
    pool = f" nodes={scenario.n_nodes}" if scenario.n_nodes else ""
    print(f"scenario seed={args.seed}: {scenario.code} k={scenario.k} "
          f"p={scenario.p} element={scenario.element_size}B "
          f"stripes={scenario.n_stripes}{pool}, {len(scenario.ops)} ops")
    if args.trace:
        for record in result.trace:
            print(f"  {record}")
    print(f"virtual time: {result.virtual_end:.6f}s")
    print(f"trace digest: {result.digest}")
    return 0


def _cluster_array(args):
    from repro.cluster.client import ClusterArray, RetryPolicy

    addresses = [_parse_address(spec) for spec in args.nodes]
    k = len(addresses) - 2
    if k < 2:
        raise SystemExit("error: a cluster needs at least 4 nodes (k >= 2 plus P, Q)")
    code = make_code(args.code, k, element_size=args.element_size,
                     **({"p": args.p} if args.p else {}))
    policy = RetryPolicy(timeout=args.timeout)
    return ClusterArray(code, addresses, args.stripes, policy=policy)


def cmd_cluster_scrub(args) -> int:
    from repro.cluster.scrub import ClusterScrubber

    async def run() -> int:
        array = _cluster_array(args)
        scrubber = ClusterScrubber(array, window=args.window)
        report = await scrubber.scrub(repair=not args.detect_only, deep=args.deep)
        mode = "deep" if args.deep else "fast-path"
        print(f"scrub pass ({mode}): {report.stripes_scanned} stripes scanned, "
              f"{report.stripes_clean} clean "
              f"({report.fast_path_hits} settled by CRC probe)")
        for stripe, column in report.corrected:
            print(f"  corrected: stripe {stripe} column {column}")
        for stripe in report.detected_only:
            print(f"  detected only (no repair): stripe {stripe}")
        for stripe in report.deferred:
            print(f"  deferred (column unreachable): stripe {stripe}")
        for stripe in report.uncorrectable:
            print(f"  UNCORRECTABLE: stripe {stripe}")
        print("array healthy" if report.healthy
              else "array NOT healthy -- see stripes above")
        return 0 if report.healthy else 1

    return asyncio.run(run())


def cmd_cluster_heal(args) -> int:
    from repro.bench.report import format_table
    from repro.cluster.health import HealthMonitor
    from repro.cluster.rebuild import RebuildScheduler

    if (args.rebuild is None) != (args.spare is None):
        raise SystemExit("error: --rebuild and --spare go together")

    async def run() -> int:
        array = _cluster_array(args)
        monitor = HealthMonitor(
            array, miss_threshold=args.probes, probe_timeout=args.timeout
        )
        for _ in range(args.probes):
            await monitor.probe_once()
        rows = [
            {
                "column": entry["column"],
                "state": "FAILED" if entry["failed"]
                else ("missing" if entry["misses"] else "alive"),
                "misses": entry["misses"],
                "breaker": entry["breaker"],
            }
            for entry in monitor.status()["columns"]
        ]
        print(format_table(rows, title=f"column health after {args.probes} probes"))
        if args.rebuild is not None:
            spare = _parse_address(args.spare)
            print(f"rebuilding column {args.rebuild} onto {args.spare}...")
            done = await RebuildScheduler(array).rebuild_column(args.rebuild, spare)
            print(f"rebuilt {done} stripes; column {args.rebuild} now served by "
                  f"{args.spare}")
            return 0
        return 0 if not any(monitor.failed) else 1

    return asyncio.run(run())


def cmd_cluster_membership(args) -> int:
    """``repro cluster status|join|drain`` -- one node holds the table.

    The node stores the membership snapshot as dumb durable state
    behind the ``membership`` verb; mutations are validated by
    :class:`~repro.cluster.membership.MembershipTable` on the node, so
    illegal transitions come back as errors, not corrupted tables.
    Draining here only marks the node DRAINING (placement-ineligible,
    still serving); the actual strip migration is the rebalancer's job.
    """
    from repro.bench.report import format_table
    from repro.cluster.client import send_verb

    header: dict = {}
    if args.cluster_command == "join":
        host, port = _parse_address(args.address)
        header["join"] = {"id": args.id, "host": host, "port": port,
                          "live": args.live}
    elif args.cluster_command == "drain":
        header["drain"] = args.id

    async def run() -> int:
        reply, _ = await send_verb(
            _parse_address(args.node), "membership", header,
            timeout=args.timeout,
        )
        if reply.get("status") != "ok":
            print(f"error: {reply.get('error')}: {reply.get('detail')}")
            return 1
        table = reply.get("membership", {})
        rows = [
            {
                "node": entry["id"],
                "state": entry["state"],
                "address": f"{entry['address'][0]}:{entry['address'][1]}",
                "since_epoch": entry["since_epoch"],
            }
            for entry in table.get("nodes", ())
        ]
        title = f"membership @ epoch {table.get('epoch', 0)}"
        if rows:
            print(format_table(rows, title=title))
        else:
            print(f"{title}: no nodes recorded")
        return 0

    return asyncio.run(run())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="RAID-6 Liberation-code file erasure tool"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    enc = sub.add_parser("encode", help="split a file into k+2 pieces")
    enc.add_argument("file")
    enc.add_argument("--k", type=int, default=6, help="data pieces (default 6)")
    enc.add_argument("--p", type=int, default=None, help="prime (default: minimal)")
    enc.add_argument("--code", default="liberation-optimal", choices=available_codes())
    enc.add_argument("--element-size", type=int, default=4096)
    enc.add_argument("--out-dir", default=None)
    enc.set_defaults(func=cmd_encode)

    dec = sub.add_parser("decode", help="reassemble a file from surviving pieces")
    dec.add_argument("manifest")
    dec.add_argument("-o", "--output", required=True)
    dec.add_argument("--repair", action="store_true",
                     help="also rewrite the missing/corrupt piece files")
    dec.set_defaults(func=cmd_decode)

    ver = sub.add_parser("verify", help="check pieces against the manifest")
    ver.add_argument("manifest")
    ver.set_defaults(func=cmd_verify)

    info = sub.add_parser("info", help="print the code-comparison table")
    info.add_argument("--k", type=int, default=10)
    info.set_defaults(func=cmd_info)

    srv = sub.add_parser("serve", help="run one strip node of a cluster")
    srv.add_argument("--column", type=int, default=0, help="logical column served")
    srv.add_argument("--stripes", type=int, default=64, help="strips stored")
    srv.add_argument("--k", type=int, default=6, help="data columns of the code")
    srv.add_argument("--p", type=int, default=None, help="prime (default: minimal)")
    srv.add_argument("--code", default="liberation-optimal", choices=available_codes())
    srv.add_argument("--element-size", type=int, default=4096)
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0, help="0 picks an ephemeral port")
    srv.add_argument("--port-file", default=None,
                     help="write the bound port here once listening")
    srv.set_defaults(func=cmd_serve)

    st = sub.add_parser("stats", help="print strip-node metrics")
    st.add_argument("nodes", nargs="+", metavar="HOST:PORT")
    st.add_argument("--timeout", type=float, default=2.0)
    st.add_argument("--prometheus", action="store_true",
                    help="print the node's Prometheus text exposition instead")
    st.add_argument("--shutdown", action="store_true",
                    help="ask each node to shut down after reporting")
    st.set_defaults(func=cmd_stats)

    tr = sub.add_parser(
        "trace", help="trace real encodes/decodes to Chrome trace_event JSON"
    )
    tr.add_argument("--k", type=int, default=6, help="data columns (default 6)")
    tr.add_argument("--p", type=int, default=None, help="prime (default: minimal)")
    tr.add_argument("--codes", default="liberation-optimal,liberation-original",
                    help="comma-separated families to trace side by side")
    tr.add_argument("--element-size", type=int, default=4096)
    tr.add_argument("--repeat", type=int, default=3,
                    help="encodes per family (first is the plan-cache miss)")
    tr.add_argument("--erasures", default=None,
                    help="comma-separated columns to erase and decode, e.g. 0,1")
    tr.add_argument("--out", default="trace.json",
                    help="Chrome trace_event output path (default trace.json)")
    tr.add_argument("--jsonl", default=None,
                    help="also write the raw span JSONL here")
    tr.set_defaults(func=cmd_trace)

    bench = sub.add_parser("bench", help="benchmark trajectory commands")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    rg = bench_sub.add_parser(
        "regress", help="run the perf suite and diff against the previous run"
    )
    rg.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative drift before failing (default 0.15)")
    rg.add_argument("--out", default="BENCH_perf.json",
                    help="perf trajectory file (default BENCH_perf.json)")
    rg.add_argument("--baseline", default=None,
                    help="compare against this file instead of the previous --out")
    rg.add_argument("--quick", action="store_true",
                    help="single geometry, short timing windows (PR soft gate)")
    rg.set_defaults(func=cmd_bench_regress)

    gw = sub.add_parser("gateway", help="object-store front-end commands")
    gw_sub = gw.add_subparsers(dest="gateway_command", required=True)
    gb = gw_sub.add_parser(
        "bench",
        help="drive a zipfian object workload (sim seams or real sockets)",
    )
    gb.add_argument("--mode", choices=("sim", "real"), default="sim",
                    help="sim: virtual clock + memory transport, deterministic "
                         "digest; real: loopback sockets, measured latency")
    gb.add_argument("--seed", type=int, default=0)
    gb.add_argument("--objects", type=int, default=24, help="keyspace size")
    gb.add_argument("--object-size", type=int, default=1024)
    gb.add_argument("--ops", type=int, default=300)
    gb.add_argument("--rate", type=float, default=2000.0,
                    help="open-loop arrival rate per second")
    gb.add_argument("--read-fraction", type=float, default=0.8)
    gb.add_argument("--update-bytes", type=int, default=64)
    gb.add_argument("--zipf-theta", type=float, default=0.99)
    gb.add_argument("--stripes", type=int, default=96)
    gb.add_argument("--service-latency", type=float, default=0.0005,
                    help="per-request virtual service time in sim mode")
    gb.add_argument("--max-inflight", type=int, default=16)
    gb.add_argument("--max-queue", type=int, default=64)
    gb.add_argument("--queue-timeout", type=float, default=0.25,
                    help="shed a queued request older than this (seconds)")
    gb.add_argument("--json", action="store_true",
                    help="emit the full report as JSON")
    gb.add_argument("--perf", nargs="?", const=True, default=None,
                    help="merge throughput into this BENCH_perf.json "
                         "(default path when given without a value)")
    gb.set_defaults(func=cmd_gateway_bench)

    an = sub.add_parser(
        "analyze",
        help="symbolically prove every schedule correct and audit XOR optimality",
    )
    an.add_argument("--families", default=None,
                    help="comma-separated families (default: all schedule-based)")
    an.add_argument("--all-families", action="store_true",
                    help="explicit spelling of the default family set")
    an.add_argument("--p", default="5,7,11,13",
                    help="comma-separated primes (default 5,7,11,13)")
    an.add_argument("--k", default=None,
                    help="comma-separated k values (default: every valid k)")
    an.add_argument("--json", default=None,
                    help="write the machine-readable report to this path "
                         "('-' for stdout)")
    an.add_argument("--no-ast-lint", action="store_true",
                    help="skip the project sim-seam AST lint")
    an.add_argument("--concurrency", action="store_true",
                    help="run only the concurrency analyzer (async-safety, "
                         "lock discipline, view escapes, protocol model)")
    an.add_argument("--no-concurrency", action="store_true",
                    help="skip the concurrency analyzer")
    an.add_argument("--verbose", action="store_true",
                    help="print each geometry as it is proved")
    an.set_defaults(func=cmd_analyze)

    sim = sub.add_parser("sim", help="deterministic simulation / fuzzing")
    sim_sub = sim.add_subparsers(dest="sim_command", required=True)

    fz = sim_sub.add_parser("fuzz", help="differential-fuzz the whole stack")
    fz.add_argument("--seed", type=int, default=0, help="base case seed")
    fz.add_argument("--cases", type=int, default=None,
                    help="stop after N cases (default 100 unless --duration)")
    fz.add_argument("--duration", type=float, default=None,
                    help="stop after this many wall seconds")
    fz.add_argument("--out", default=None,
                    help="repro file path (default sim-repro-<seed>.json)")
    fz.add_argument("--no-shrink", action="store_true",
                    help="write the raw failing case without minimising")
    fz.add_argument("--progress-every", type=int, default=0,
                    help="print a heartbeat every N cases")
    fz.add_argument("--chaos", action="store_true",
                    help="include self-healing ops (scrub/heal/2PC crash "
                         "injection) in generated scenarios")
    fz.add_argument("--objects", action="store_true",
                    help="route the data plane through the object gateway "
                         "(put/get/update/delete with a shadow oracle)")
    fz.add_argument("--membership", action="store_true",
                    help="interleave elastic membership-churn campaigns "
                         "(join/leave/drain/epoch bumps + convergence proof)")
    fz.set_defaults(func=cmd_sim_fuzz)

    rp = sim_sub.add_parser("replay", help="re-run a recorded repro file")
    rp.add_argument("file")
    rp.set_defaults(func=cmd_sim_replay)

    rn = sim_sub.add_parser("run", help="run one seeded scenario, print digest")
    rn.add_argument("--seed", type=int, default=0)
    rn.add_argument("--trace", action="store_true", help="print per-op trace")
    rn.add_argument("--chaos", action="store_true",
                    help="generate the scenario with the self-healing op set")
    rn.add_argument("--objects", action="store_true",
                    help="generate the scenario with object-gateway traffic")
    rn.add_argument("--membership", action="store_true",
                    help="generate an elastic membership-churn campaign")
    rn.set_defaults(func=cmd_sim_run)

    cl = sub.add_parser("cluster", help="operate a running stripe cluster")
    cl_sub = cl.add_subparsers(dest="cluster_command", required=True)

    sc = cl_sub.add_parser(
        "scrub", help="verify (and repair) every stripe of a live cluster"
    )
    sc.add_argument("nodes", nargs="+", metavar="HOST:PORT",
                    help="one address per column, in column order (k+2 total)")
    sc.add_argument("--stripes", type=int, default=64, help="stripes stored")
    sc.add_argument("--p", type=int, default=None, help="prime (default: minimal)")
    sc.add_argument("--code", default="liberation-optimal", choices=available_codes())
    sc.add_argument("--element-size", type=int, default=4096)
    sc.add_argument("--window", type=int, default=8,
                    help="stripes verified concurrently (default 8)")
    sc.add_argument("--deep", action="store_true",
                    help="skip the CRC fast path; fetch and verify every stripe")
    sc.add_argument("--detect-only", action="store_true",
                    help="report damage without writing repairs back")
    sc.add_argument("--timeout", type=float, default=2.0)
    sc.set_defaults(func=cmd_cluster_scrub)

    hl = cl_sub.add_parser(
        "heal", help="probe column health; optionally rebuild onto a spare"
    )
    hl.add_argument("nodes", nargs="+", metavar="HOST:PORT",
                    help="one address per column, in column order (k+2 total)")
    hl.add_argument("--stripes", type=int, default=64, help="stripes stored")
    hl.add_argument("--p", type=int, default=None, help="prime (default: minimal)")
    hl.add_argument("--code", default="liberation-optimal", choices=available_codes())
    hl.add_argument("--element-size", type=int, default=4096)
    hl.add_argument("--probes", type=int, default=3,
                    help="heartbeat rounds before a column counts as failed")
    hl.add_argument("--timeout", type=float, default=0.5,
                    help="per-probe timeout in seconds (default 0.5)")
    hl.add_argument("--rebuild", type=int, default=None, metavar="COLUMN",
                    help="rebuild this column onto --spare after probing")
    hl.add_argument("--spare", default=None, metavar="HOST:PORT",
                    help="blank replacement node for --rebuild")
    hl.set_defaults(func=cmd_cluster_heal)

    st = cl_sub.add_parser(
        "status", help="print the membership table a node is holding"
    )
    st.add_argument("node", metavar="HOST:PORT",
                    help="any node holding the membership snapshot")
    st.add_argument("--timeout", type=float, default=5.0)
    st.set_defaults(func=cmd_cluster_membership)

    jn = cl_sub.add_parser(
        "join", help="announce a node to the cluster's membership table"
    )
    jn.add_argument("node", metavar="HOST:PORT",
                    help="any node holding the membership snapshot")
    jn.add_argument("id", help="joining node's identity (e.g. n7)")
    jn.add_argument("address", metavar="HOST:PORT",
                    help="joining node's data address")
    jn.add_argument("--live", action="store_true",
                    help="admit straight into the placement pool instead of "
                         "waiting in JOINING for a heartbeat verdict")
    jn.add_argument("--timeout", type=float, default=5.0)
    jn.set_defaults(func=cmd_cluster_membership)

    dr = cl_sub.add_parser(
        "drain", help="mark a node DRAINING (still serving, not placing)"
    )
    dr.add_argument("node", metavar="HOST:PORT",
                    help="any node holding the membership snapshot")
    dr.add_argument("id", help="node identity to drain")
    dr.add_argument("--timeout", type=float, default=5.0)
    dr.set_defaults(func=cmd_cluster_membership)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
