"""Algorithm 1 -- optimal Liberation encoding (paper §III-B).

The encoder first evaluates every common expression
``E_j = b[r_j, j-1] ^ b[r_j, j]`` directly into its P cell and copies it
(for free) into its Q cell, then sweeps all data cells accumulating each
into its row parity and its native anti-diagonal parity, *skipping*

* the left member of each pair entirely (both of its parity roles are
  covered by the seeded ``E_j``), and
* the right member's row-parity role (covered by ``E_j``; its native
  anti-diagonal role is distinct from its extra-bit role and is still
  accumulated).

Every extra bit ``a_i`` enters Q exclusively through a common
expression, which is what eliminates the ``(k-1)/2p`` per-bit overhead
of the original bit-matrix encoder.  The resulting schedule costs
exactly ``2p(k-1)`` XORs -- the theoretical lower bound of ``k-1`` per
parity bit -- for every ``2 <= k <= p`` (the paper's 40-XOR ``p=5``
example is a unit-test oracle).
"""

from __future__ import annotations

from repro.core.geometry import LiberationGeometry
from repro.engine.ops import Schedule

__all__ = ["encode_schedule"]


def encode_schedule(p: int, k: int) -> Schedule:
    """Build the optimal encoding schedule for Liberation(p, k).

    The schedule reads the ``k`` data columns of a ``(k+2, p)`` stripe
    and writes the parity columns ``k`` (P) and ``k+1`` (Q).  XOR cost
    is exactly ``2 * p * (k - 1)``.
    """
    geo = LiberationGeometry(p, k)
    mod = geo.mod
    p_col, q_col = geo.p_col, geo.q_col
    sched = Schedule(geo.n_cols, p)

    # Lines 1-5: seed every common expression into its P cell, then
    # mirror it into its Q cell with a copy (free in the paper's XOR
    # accounting, one memcpy-like region op at execution time).
    for ce in geo.common_expressions:
        sched.copy_cell((p_col, ce.row), (ce.left_col, ce.row))
        sched.accumulate((p_col, ce.row), (ce.right_col, ce.row))
        sched.copy_cell((q_col, ce.q_index), (p_col, ce.row))

    # Lines 6-25: sweep all data cells.
    for j in range(k):
        for i in range(p):
            # Line 8: the left member of a pair contributes to parity
            # only through its common expression -- skip both roles.
            if geo.is_left_member(i, j):
                continue
            # Lines 11-15: accumulate into the native anti-diagonal.
            sched.xor_into((q_col, mod(i - j)), (j, i))
            # Line 16: the right member's row-parity role is covered by
            # its common expression -- skip P only.
            if geo.is_right_member(i, j):
                continue
            # Lines 19-23: accumulate into the row parity.
            sched.xor_into((p_col, i), (j, i))
    return sched
