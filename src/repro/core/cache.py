"""Process-wide schedule memoisation.

Schedules are pure functions of ``(p, k, erasure pattern)``; the
complexity sweeps (Figs. 5-8) and the array simulator rebuild the same
handful of them constantly.  These wrappers add an LRU layer on top of
the raw builders in :mod:`repro.core.encoder` / :mod:`repro.core.decoder`.

The throughput benchmarks deliberately do **not** route the baseline
through this cache: re-deriving the decoding matrix per call is part of
the original implementation's measured cost (see
:class:`repro.codes.liberation.LiberationOriginal`).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.decoder import decode_schedule
from repro.core.encoder import encode_schedule
from repro.engine import Schedule

__all__ = ["cached_encode_schedule", "cached_decode_schedule", "clear_schedule_caches"]


@lru_cache(maxsize=512)
def cached_encode_schedule(p: int, k: int) -> Schedule:
    """Memoised :func:`repro.core.encoder.encode_schedule`."""
    return encode_schedule(p, k)


@lru_cache(maxsize=4096)
def cached_decode_schedule(p: int, k: int, erasures: tuple[int, ...]) -> Schedule:
    """Memoised :func:`repro.core.decoder.decode_schedule`.

    ``erasures`` must be a (hashable) tuple.
    """
    return decode_schedule(p, k, erasures)


def clear_schedule_caches() -> None:
    """Drop all memoised schedules (used by benchmarks between runs)."""
    cached_encode_schedule.cache_clear()
    cached_decode_schedule.cache_clear()
