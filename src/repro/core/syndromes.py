"""Algorithm 3 -- syndrome computation (paper §III-C).

With data columns ``l`` and ``r`` erased, the decoder overwrites the two
dead strips with parity syndromes computed from the survivors:

* ``b[i, l]``  <- the ``i``-th *row* syndrome ``S_i^P``;
* ``b[<i+r>, r]`` <- the ``i``-th *anti-diagonal* syndrome ``S_i^Q``.

Following the paper's (non-standard) definition, a syndrome XORs the
surviving bits of its constraint **excluding any bit that belongs to an
unknown common expression** (a pair with at least one member erased);
those surviving members are consumed later, during iterative retrieval,
when their pair's value is reconstructed.  Known common expressions
(pairs entirely within surviving columns) are seeded first and reused by
both the P and the Q side, exactly as in encoding.

The structure mirrors Algorithm 1; the only differences are the skips
for erased columns and the final fold-in of the stored P/Q parity
strips (lines 25-27).
"""

from __future__ import annotations

from repro.core.geometry import LiberationGeometry
from repro.engine.ops import Schedule

__all__ = ["syndrome_schedule"]


def syndrome_schedule(geo: LiberationGeometry, l: int, r: int) -> Schedule:
    """Build the syndrome-computation schedule for erased data columns.

    ``l`` receives row syndromes and ``r`` anti-diagonal syndromes; the
    two may arrive in either order (Algorithm 4 may have exchanged them
    while searching for a starting point).  The schedule overwrites the
    erased strips, so it is safe to run on a damaged stripe whose dead
    columns contain garbage.
    """
    p, k, mod = geo.p, geo.k, geo.mod
    if l == r or not (0 <= l < k and 0 <= r < k):
        raise ValueError(f"invalid erased data columns l={l}, r={r} for k={k}")
    erased = {l, r}
    sched = Schedule(geo.n_cols, p)

    # Lines 1-6: seed the *known* common expressions (pairs untouched
    # by the erasures) into the row-syndrome cell, mirrored into the
    # anti-diagonal-syndrome cell with a free copy.
    for ce in geo.common_expressions:
        if erased & {ce.left_col, ce.right_col}:
            continue  # unknown common expression: handled by Algorithm 4
        sched.copy_cell((l, ce.row), (ce.left_col, ce.row))
        sched.accumulate((l, ce.row), (ce.right_col, ce.row))
        sched.copy_cell((r, mod(ce.q_index + r)), (l, ce.row))

    # Lines 7-24: accumulate every surviving data cell into its row and
    # native anti-diagonal syndromes, with the same member skips as
    # encoding (left member: both roles; right member: row role only).
    # Members of unknown pairs are skipped too -- the paper's syndrome
    # definition excludes them.
    for j in range(k):
        if j in erased:
            continue
        for i in range(p):
            if geo.is_left_member(i, j):
                continue
            sched.xor_into((r, mod(i - j + r)), (j, i))
            if geo.is_right_member(i, j):
                continue
            sched.xor_into((l, i), (j, i))

    # Lines 25-27: fold in the stored parity strips.  ``xor_into``
    # degrades to a copy for syndrome cells with no survivor
    # contributions (e.g. k = 2).
    for i in range(p):
        sched.xor_into((l, i), (geo.p_col, i))
        sched.xor_into((r, i), (geo.q_col, mod(i - r)))
    return sched
