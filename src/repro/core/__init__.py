"""The paper's contribution: optimal Liberation encode/decode.

* :mod:`repro.core.geometry` -- the alternative geometric presentation
  (anti-diagonals, extra bits, common expressions) of §III-A.
* :mod:`repro.core.encoder` -- Algorithm 1 (optimal encoding).
* :mod:`repro.core.starting_point` -- Algorithm 2.
* :mod:`repro.core.syndromes` -- Algorithm 3.
* :mod:`repro.core.decoder` -- Algorithm 4 plus the easy erasure cases.
* :mod:`repro.core.error_correction` -- single-column silent-corruption
  repair.
* :mod:`repro.core.cache` -- process-wide schedule memoisation.
"""

from repro.core.geometry import LiberationGeometry, CommonExpression
from repro.core.encoder import encode_schedule
from repro.core.starting_point import (
    StartingPoint,
    find_starting_point,
    choose_starting_point,
)
from repro.core.syndromes import syndrome_schedule
from repro.core.decoder import decode_schedule
from repro.core.error_correction import (
    ScanResult,
    ScanStatus,
    compute_syndromes,
    locate_and_correct,
)
from repro.core.cache import (
    cached_encode_schedule,
    cached_decode_schedule,
    clear_schedule_caches,
)

__all__ = [
    "LiberationGeometry",
    "CommonExpression",
    "encode_schedule",
    "StartingPoint",
    "find_starting_point",
    "choose_starting_point",
    "syndrome_schedule",
    "decode_schedule",
    "ScanResult",
    "ScanStatus",
    "compute_syndromes",
    "locate_and_correct",
    "cached_encode_schedule",
    "cached_decode_schedule",
    "clear_schedule_caches",
]
