"""Single-column error correction for Liberation stripes (paper §I).

Erasure decoding assumes the damaged columns are *known*; silent data
corruption gives no such hint.  The paper notes that its geometric
presentation also yields "an efficient algorithm for correcting a
single column error"; this module implements it:

1. Compute both parity syndromes over the full stripe.  ``S^P_i`` is
   the XOR of row constraint ``i`` including its P element; ``S^Q_d``
   likewise for anti-diagonal constraint ``d`` including its extra bit
   and Q element.  A clean stripe has all-zero syndromes.
2. If only one syndrome family is non-zero, the corresponding parity
   column absorbed the error: XOR the syndrome pattern back in.
3. Otherwise a single corrupted *data* column ``j`` with error pattern
   ``e`` satisfies ``S^P_i = e_i`` and
   ``S^Q_d = e_{<d+j>} (^ e_{extra row}  if constraint d's extra bit
   lies in column j)``.  The locator predicts ``S^Q`` from ``S^P`` for
   every candidate ``j`` (a cyclic shift plus at most ``p-1`` extra-bit
   fixups -- O(p^2) word ops total) and picks the column whose
   prediction matches.  MDS distance 3 guarantees the match is unique.
4. No match means the single-column assumption is violated:
   the stripe is flagged uncorrectable (>= 2 corrupt columns).

The same routine drives the array simulator's scrubber
(:mod:`repro.array.scrub`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.geometry import LiberationGeometry

__all__ = ["ScanStatus", "ScanResult", "compute_syndromes", "locate_and_correct"]


class ScanStatus(Enum):
    """Outcome of an error scan."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    UNCORRECTABLE = "uncorrectable"


@dataclass(frozen=True)
class ScanResult:
    """Result of :func:`locate_and_correct`.

    ``column`` is the corrected column index (or ``None``);
    ``elements`` counts the corrupted elements repaired.
    """

    status: ScanStatus
    column: int | None = None
    elements: int = 0


def compute_syndromes(geo: LiberationGeometry, buf: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Both syndrome families of a (possibly corrupt) full stripe.

    ``buf`` has shape ``(>= k+2, p, words)`` (scratch columns beyond
    ``q_col`` are ignored).  Returns ``(s_p, s_q)`` of shape
    ``(p, words)`` each.
    """
    p, k, mod = geo.p, geo.k, geo.mod
    s_p = buf[geo.p_col, :, :].copy()
    for j in range(k):
        np.bitwise_xor(s_p, buf[j], out=s_p)

    s_q = buf[geo.q_col, :, :].copy()
    for d in range(p):
        for (row, col) in geo.q_constraint_cells(d):
            np.bitwise_xor(s_q[d], buf[col, row], out=s_q[d])
    return s_p, s_q


def _predicted_q(geo: LiberationGeometry, s_p: np.ndarray, j: int) -> np.ndarray:
    """The Q syndromes a pattern ``e = s_p`` in column ``j`` would cause."""
    p, mod = geo.p, geo.mod
    pred = np.empty_like(s_p)
    for d in range(p):
        pred[d] = s_p[mod(d + j)]
        extra = geo.extra_bit(d)
        if extra is not None and extra[1] == j:
            np.bitwise_xor(pred[d], s_p[extra[0]], out=pred[d])
    return pred


def locate_and_correct(geo: LiberationGeometry, buf: np.ndarray) -> ScanResult:
    """Detect, locate and repair at most one corrupted column in place."""
    s_p, s_q = compute_syndromes(geo, buf)
    p_dirty = bool(s_p.any())
    q_dirty = bool(s_q.any())

    if not p_dirty and not q_dirty:
        return ScanResult(ScanStatus.CLEAN)
    if p_dirty and not q_dirty:
        np.bitwise_xor(buf[geo.p_col], s_p, out=buf[geo.p_col])
        return ScanResult(
            ScanStatus.CORRECTED, geo.p_col, int(np.count_nonzero(s_p.any(axis=-1)))
        )
    if q_dirty and not p_dirty:
        np.bitwise_xor(buf[geo.q_col], s_q, out=buf[geo.q_col])
        return ScanResult(
            ScanStatus.CORRECTED, geo.q_col, int(np.count_nonzero(s_q.any(axis=-1)))
        )

    for j in range(geo.k):
        if np.array_equal(_predicted_q(geo, s_p, j), s_q):
            np.bitwise_xor(buf[j], s_p, out=buf[j])
            return ScanResult(
                ScanStatus.CORRECTED, j, int(np.count_nonzero(s_p.any(axis=-1)))
            )
    return ScanResult(ScanStatus.UNCORRECTABLE)
