"""The geometric presentation of Liberation codes (paper §III-A).

A Liberation codeword is a ``p x (p+2)`` bit array (``p`` an odd prime;
columns ``k..p-1`` are phantom zeros when only ``k`` data disks exist).
The two parity columns are defined by equations (1)-(2) of the paper:

* **Row parity** ``P_i``: the XOR of all data bits in row ``i``.
* **Anti-diagonal parity** ``Q_i``: the XOR of the data bits on the
  anti-diagonal ``{(x, y) : x - y = i (mod p)}``, plus -- for ``i != 0``
  -- one *extra bit* ``a_i = b[<-i-1>, <-2i>]``, which sits at the
  intersection of the ``(i-1)``-th anti-diagonal and the ``(p-1)``-th
  diagonal of slope ``(p-1)/2``.

The key structural fact the optimal algorithms exploit: for each pair of
adjacent columns ``(j-1, j)`` there is one *common expression*
``E = b[r, j-1] ^ b[r, j]`` (at row ``r = <(p+1)/2 * j> - 1``) that
appears in full in both the row-parity constraint ``P_r`` and the
anti-diagonal constraint ``Q_{p-1-r}``: the left member lies natively on
that anti-diagonal and the right member is exactly its extra bit.
Computing ``E`` once and reusing it saves one XOR per column pair in
both encode and decode.

:class:`LiberationGeometry` packages all of these index computations;
Algorithms 1-4 are written against it so the index arithmetic lives (and
is tested) in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.utils.modular import Mod
from repro.utils.validation import check_prime_p, check_k

__all__ = ["CommonExpression", "LiberationGeometry"]


@dataclass(frozen=True)
class CommonExpression:
    """The common expression of adjacent columns ``(j-1, j)``.

    ``value = b[row, left_col] ^ b[row, right_col]`` appears in the row
    constraint ``P_row`` and the anti-diagonal constraint ``Q_q_index``
    (left member natively, right member as the extra bit).
    """

    row: int
    left_col: int
    right_col: int
    q_index: int

    @property
    def left(self) -> tuple[int, int]:
        """Left member cell ``(row, col)``."""
        return (self.row, self.left_col)

    @property
    def right(self) -> tuple[int, int]:
        """Right member cell ``(row, col)``."""
        return (self.row, self.right_col)

    @property
    def p_index(self) -> int:
        """Index of the row-parity constraint containing this expression."""
        return self.row


class LiberationGeometry:
    """Index geometry of Liberation(p, k): parities, extras, pairs."""

    def __init__(self, p: int, k: int) -> None:
        self.p = check_prime_p(p)
        self.k = check_k(k, self.p, code="liberation")
        self.mod = Mod(self.p)

    # -- basic constraint geometry -------------------------------------

    def anti_diag_of(self, row: int, col: int) -> int:
        """Index of the anti-diagonal through cell ``(row, col)``."""
        return self.mod(row - col)

    def anti_diag_cells(self, d: int) -> list[tuple[int, int]]:
        """Native data cells of anti-diagonal ``d`` (real columns only)."""
        return [(self.mod(d + t), t) for t in range(self.k)]

    def row_cells(self, i: int) -> list[tuple[int, int]]:
        """Data cells of row-parity constraint ``i`` (real columns only)."""
        return [(i, t) for t in range(self.k)]

    def extra_bit(self, d: int) -> tuple[int, int] | None:
        """The extra bit ``a_d`` of anti-diagonal constraint ``d``.

        Returns the ``(row, col)`` of the extra data bit, or ``None`` if
        the constraint has no extra bit (``d = 0``) or the extra bit
        falls in a phantom column (``col >= k``).
        """
        if self.mod(d) == 0:
            return None
        cell = (self.mod(-d - 1), self.mod(-2 * d))
        return cell if cell[1] < self.k else None

    def extra_bit_of_column(self, col: int) -> tuple[int, int] | None:
        """The (unique) extra-bit cell located in column ``col``.

        Column 0 hosts no extra bit; every other real column hosts
        exactly one, at row ``<col*(p+1)/2 - 1>`` (serving constraint
        ``Q_{<-col*(p+1)/2>}``).
        """
        if not 0 <= col < self.k:
            raise IndexError(f"column {col} out of range [0, {self.k})")
        if col == 0:
            return None
        row = self.mod(col * self.mod.half_plus - 1)
        return (row, col)

    def extra_diag_of_column(self, col: int) -> int | None:
        """Index ``d`` of the constraint whose extra bit lives in ``col``."""
        cell = self.extra_bit_of_column(col)
        if cell is None:
            return None
        return self.mod(-cell[0] - 1)

    def q_constraint_cells(self, d: int) -> list[tuple[int, int]]:
        """All data cells of anti-diagonal constraint ``d`` (incl. extra)."""
        cells = self.anti_diag_cells(d)
        extra = self.extra_bit(d)
        if extra is not None:
            cells.append(extra)
        return cells

    # -- common expressions ---------------------------------------------

    def common_expression(self, j: int) -> CommonExpression:
        """The common expression of column pair ``(j-1, j)``, ``1 <= j <= k-1``.

        Algorithm 1 line 2: its row is ``<(p+1)/2 * j> - 1``; it is
        shared by ``P_row`` and ``Q_{p-1-row}``.
        """
        if not 1 <= j <= self.k - 1:
            raise IndexError(
                f"column pair index j={j} out of range [1, {self.k - 1}] "
                f"for k={self.k}"
            )
        row = self.mod(self.mod.half_plus * j) - 1
        # <x> - 1 with <x> != 0 stays in [0, p-2]; <x> = 0 would need
        # j = 0 (mod p), impossible for 1 <= j <= p-1.
        assert row >= 0
        return CommonExpression(
            row=row, left_col=j - 1, right_col=j, q_index=self.p - 1 - row
        )

    @cached_property
    def common_expressions(self) -> tuple[CommonExpression, ...]:
        """All ``k-1`` common expressions, indexed by pair ``j-1``."""
        return tuple(self.common_expression(j) for j in range(1, self.k))

    def is_left_member(self, row: int, col: int) -> bool:
        """Whether cell ``(row, col)`` is the left member of a pair.

        Matches Algorithm 1 line 8 / Algorithm 3 line 10:
        ``<row + (p-1)/2 * col> = (p-1)/2`` and ``row != p-1`` -- *plus*
        the requirement (implicit in the paper, which works on the full
        ``p``-column array) that the partner column ``col+1`` actually
        exists, i.e. ``col + 1 <= k - 1``.
        """
        if col + 1 > self.k - 1:
            return False
        m = self.mod.half_minus
        return self.mod(row + m * col) == m and row != self.p - 1

    def is_right_member(self, row: int, col: int) -> bool:
        """Whether cell ``(row, col)`` is the right member of a pair.

        Matches Algorithm 1 line 16 / Algorithm 3 line 17:
        ``<row + (p-1)/2 * col> = p-1`` and ``row != p-1``.  (For
        ``col = 0`` the condition can only trigger at ``row = p-1``,
        which the guard excludes -- column 0 is never a right member.)
        """
        m = self.mod.half_minus
        return self.mod(row + m * col) == self.p - 1 and row != self.p - 1

    # -- convenience -----------------------------------------------------

    @property
    def n_cols(self) -> int:
        """Stripe width: ``k`` data columns + P + Q."""
        return self.k + 2

    @property
    def p_col(self) -> int:
        """Stripe column index of the P (row) parity strip."""
        return self.k

    @property
    def q_col(self) -> int:
        """Stripe column index of the Q (anti-diagonal) parity strip."""
        return self.k + 1

    def __repr__(self) -> str:
        return f"LiberationGeometry(p={self.p}, k={self.k})"
