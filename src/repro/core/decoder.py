"""Algorithm 4 -- optimal Liberation decoding (paper §III-C), plus the
easy erasure cases.

The hard case is two erased *data* columns ``l < r``.  The decoder:

1. picks the cheaper starting-point orientation via Algorithm 2
   (possibly exchanging ``l`` and ``r``);
2. overwrites the dead strips with row / anti-diagonal syndromes via
   Algorithm 3;
3. evaluates the starting bit ``b[x, r]`` in place by folding the
   Algorithm-2 syndrome subsets into its own syndrome cell;
4. walks the recovery chain: each iteration applies the row constraint
   to produce a value in column ``l`` and the anti-diagonal constraint
   to produce the next value in column ``r``, stepping the row by
   ``delta = r - l (mod p)``.  When the produced value is an *unknown
   common expression* rather than a bit, it is used twice -- once
   propagated along the Q chain, once converted to the missing bit by
   XORing the surviving pair member (the paper's trick 3).

All other erasure patterns reduce to re-encoding or plain
row/anti-diagonal reconstruction and are handled by
:func:`decode_schedule`, the single public entry point.

Implementation notes (differences from the paper's listing, which
implicitly assumes ``k = p``):

* member tests carry the "partner column exists" guard (see
  :class:`~repro.core.geometry.LiberationGeometry.is_left_member`);
* all row indices are reduced mod ``p``; ``delta`` may represent a
  negative ``r - l`` after orientation exchange.
"""

from __future__ import annotations

from repro.core.geometry import LiberationGeometry
from repro.core.starting_point import choose_starting_point
from repro.core.syndromes import syndrome_schedule
from repro.engine.ops import Schedule
from repro.utils.validation import check_erasures

__all__ = [
    "decode_schedule",
    "two_data_erasures_schedule",
    "single_data_erasure_schedule",
    "data_and_p_erasure_schedule",
    "parity_schedule",
]


def two_data_erasures_schedule(geo: LiberationGeometry, l: int, r: int) -> Schedule:
    """Algorithm 4: recover two erased data columns."""
    p, k, mod = geo.p, geo.k, geo.mod
    sp = choose_starting_point(p, l, r)
    l, r = sp.l, sp.r  # orientation possibly exchanged (lines 2-5)
    sched = syndrome_schedule(geo, l, r)  # line 6

    # Lines 7-14: evaluate the starting element b[x, r] in place.  Its
    # own cell already holds the anti-diagonal syndrome S_{<x-r>}^Q
    # (guaranteed to be in S^Q), so that term is skipped.
    delta = mod(r - l)
    x = sp.x
    for i in sp.s_q:
        if mod(i + r) == x:
            continue
        sched.accumulate((r, x), (r, mod(i + r)))
    for i in sp.s_p:
        sched.accumulate((r, x), (l, i))

    # Lines 15-31: iterative retrieval.
    m = geo.mod.half_minus
    last = p - 1
    for t in range(p):
        # Line 16: row constraint -> value in column l (bit or unknown
        # common expression).
        sched.accumulate((l, x), (r, x))
        if mod(x + m * r) == last and x != last and delta != 1 and r >= 1:
            # Lines 17-18: (x, r) is the right member of pair (r-1, r);
            # the surviving left member was excluded from S_x^P.
            sched.accumulate((l, x), (r - 1, x))
        elif mod(x + m * r) == m and x != last and r + 1 <= k - 1:
            # Lines 19-20: (x, r) holds the unknown common expression of
            # pair (r, r+1); convert it to the missing bit using the
            # surviving right member.
            sched.accumulate((r, x), (r + 1, x))
        if mod(x + m * l) == last and x != last and l >= 1:
            # Lines 22-24: (x, l) now holds the unknown common
            # expression of pair (l-1, l): use it twice -- fold it into
            # the Q syndrome chain, then convert it to the missing bit
            # with the surviving left member.
            sched.accumulate((r, mod(x + 1 + delta)), (l, x))
            sched.accumulate((l, x), (l - 1, x))
        if t < p - 1:
            # Line 26: anti-diagonal constraint -> next value in column r.
            sched.accumulate((r, mod(x + delta)), (l, x))
        if mod(x + m * l) == m and x != last and delta != 1 and l + 1 <= k - 1:
            # Lines 27-28: (x, l) holds the unknown common expression of
            # pair (l, l+1); convert using the surviving right member.
            sched.accumulate((l, x), (l + 1, x))
        x = mod(x + delta)
    return sched


def single_data_erasure_schedule(
    geo: LiberationGeometry, col: int, *, use_q: bool = False
) -> Schedule:
    """Recover one erased data column.

    By default each missing bit is rebuilt from its row constraint
    (``k-1`` XORs per bit -- optimal).  With ``use_q=True`` (needed when
    the P strip is also dead) the anti-diagonal constraints are used
    instead; cells that serve as another constraint's extra bit are
    recovered first so that every constraint is applied with a single
    remaining unknown.
    """
    p, k, mod = geo.p, geo.k, geo.mod
    sched = Schedule(geo.n_cols, p)
    if not use_q:
        for i in range(p):
            for j in range(k):
                if j != col:
                    sched.xor_into((col, i), (j, i))
            sched.xor_into((col, i), (geo.p_col, i))
        return sched

    # Q-based recovery.  Constraint order: the one native to the
    # column's own extra bit first, then the rest; the constraint whose
    # *extra* bit lies in `col` is evaluated last, when that cell is
    # already recovered.
    extra_cell = geo.extra_bit_of_column(col) if col > 0 else None
    order = list(range(p))
    if extra_cell is not None:
        first_d = geo.anti_diag_of(*extra_cell)  # recovers the extra cell
        blocked_d = geo.extra_diag_of_column(col)  # needs the extra cell
        order.remove(first_d)
        order.remove(blocked_d)
        order = [first_d] + order + [blocked_d]
    for d in order:
        target = (col, mod(d + col))  # the native missing bit of Q_d
        for (row, j) in geo.q_constraint_cells(d):
            if j != col:
                sched.xor_into(target, (j, row))
            elif (row, j) != (target[1], target[0]):
                # The column's extra bit participating in Q_d: already
                # recovered thanks to the constraint ordering.
                sched.xor_into(target, (col, row))
        sched.xor_into(target, (geo.q_col, d))
    return sched


def parity_schedule(geo: LiberationGeometry, parities: tuple[int, ...]) -> Schedule:
    """Re-encode the given parity strips (0 = P, 1 = Q) from full data.

    Uses the common-expression structure of Algorithm 1, restricted to
    the requested strips; regenerating both is exactly the optimal
    encoder.
    """
    from repro.core.encoder import encode_schedule

    p, k, mod = geo.p, geo.k, geo.mod
    parities = tuple(sorted(set(parities)))
    if parities == (0, 1):
        return encode_schedule(p, k)
    sched = Schedule(geo.n_cols, p)
    if parities == (0,):
        for j in range(k):
            for i in range(p):
                sched.xor_into((geo.p_col, i), (j, i))
    elif parities == (1,):
        # Common expressions only pay off when shared between P and Q;
        # rebuilding Q alone costs the plain constraint sum either way.
        for j in range(k):
            for i in range(p):
                sched.xor_into((geo.q_col, mod(i - j)), (j, i))
        for d in range(p):
            extra = geo.extra_bit(d)
            if extra is not None:
                sched.xor_into((geo.q_col, d), (extra[1], extra[0]))
    else:
        raise ValueError(f"invalid parity selection {parities}")
    return sched


def data_and_p_erasure_schedule(geo: LiberationGeometry, col: int) -> Schedule:
    """Recover an erased data column plus the P strip."""
    sched = single_data_erasure_schedule(geo, col, use_q=True)
    sched.extend(parity_schedule(geo, (0,)))
    return sched


def data_and_q_erasure_schedule(geo: LiberationGeometry, col: int) -> Schedule:
    """Recover an erased data column plus the Q strip."""
    sched = single_data_erasure_schedule(geo, col, use_q=False)
    sched.extend(parity_schedule(geo, (1,)))
    return sched


def decode_schedule(p: int, k: int, erasures) -> Schedule:
    """Build the full recovery schedule for any RAID-6 erasure pattern.

    ``erasures`` lists up to two erased column indices of the
    ``(k+2)``-column stripe (``k`` = P, ``k+1`` = Q).  Dispatches to the
    optimal sub-algorithm for the pattern; an empty pattern yields an
    empty schedule.
    """
    geo = LiberationGeometry(p, k)
    ers = check_erasures(erasures, geo.n_cols)
    data = [c for c in ers if c < k]
    parity = tuple(c - k for c in ers if c >= k)

    if not ers:
        return Schedule(geo.n_cols, p)
    if not data:
        return parity_schedule(geo, parity)
    if len(data) == 2:
        return two_data_erasures_schedule(geo, data[0], data[1])
    if not parity:
        return single_data_erasure_schedule(geo, data[0])
    if parity == (0,):
        return data_and_p_erasure_schedule(geo, data[0])
    return data_and_q_erasure_schedule(geo, data[0])
