"""Algorithm 2 -- finding the starting point (paper §III-C).

With data columns ``l`` and ``r`` erased, the decoder needs one missing
bit that can be expressed as the XOR of a subset of parity syndromes
alone.  The anti-diagonal constraints whose extra bit lies in an erased
column contain *three* unknowns (two natives plus the extra bit); chains
of constraints that start at the extra bit of one erased column and step
by ``r - l`` either terminate at the other column's special constraint
-- yielding a starting point -- or wrap around, in which case the roles
of ``l`` and ``r`` must be exchanged.

:func:`find_starting_point` is the literal Algorithm 2;
:func:`choose_starting_point` applies the paper's trick 2 ("there are
two ways to find a starting point, choose the one with less XOR's") by
evaluating both orientations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.modular import Mod

__all__ = ["StartingPoint", "find_starting_point", "choose_starting_point"]


@dataclass(frozen=True)
class StartingPoint:
    """Result of Algorithm 2 for erased data columns ``(l, r)``.

    The missing bit ``b[x, r]`` equals the XOR of the row-parity
    syndromes with indices in ``s_p`` and the anti-diagonal syndromes
    with indices in ``s_q``.  ``l``/``r`` record the orientation used
    (they may be swapped relative to the caller's sorted order).
    """

    l: int
    r: int
    x: int
    s_p: tuple[int, ...]
    s_q: tuple[int, ...]

    @property
    def n_xors(self) -> int:
        """XORs to evaluate ``b[x, r]`` in place over the syndrome cells.

        The syndrome for the starting cell itself is already stored at
        ``b[x, r]`` (Algorithm 4 line 9 skips it), so the cost is
        ``|S_Q| - 1 + |S_P|``.
        """
        return len(self.s_q) - 1 + len(self.s_p)


def find_starting_point(p: int, l: int, r: int) -> StartingPoint | None:
    """Literal Algorithm 2.

    Returns ``None`` when the chain wraps without reaching the special
    constraint of column ``r`` (the paper returns ``x = -1``); callers
    then retry with ``l`` and ``r`` exchanged.

    The orientation convention follows the paper: the starting point is
    searched in the *second* argument's column.  ``l = r`` is invalid.
    """
    mod = Mod(p)
    m = mod.half_minus
    if l == r:
        raise ValueError("erased columns must be distinct")
    if r == 0:
        # Column 0 hosts no extra bit, so the "special" constraint of
        # the r side does not exist: this orientation cannot seed a
        # chain (the l = 0 escape in the loop condition exists for the
        # mirrored reason).  Callers must use the (0, r) orientation.
        return None

    extra_l = p - 1 - mod(m * l)  # row of column l's extra bit
    extra_r = p - 1 - mod(m * r)  # row of column r's extra bit
    special_q_l = mod(extra_l + 1 - l)  # Q constraint w/ 3 unknowns via l
    special_q_r = mod(extra_r + 1 - r)  # Q constraint w/ 3 unknowns via r
    cur_q = mod(special_q_r - 1 + (r - l))
    s_q = [special_q_r]
    s_p = [extra_r]
    while (cur_q != special_q_l or l == 0) and cur_q != special_q_r:
        s_q.append(cur_q)
        s_p.append(mod(cur_q + r))
        cur_q = mod(cur_q + (r - l))
    if cur_q == special_q_r:
        x = mod(extra_r + 1)
        return StartingPoint(l=l, r=r, x=x, s_p=tuple(s_p), s_q=tuple(s_q))
    return None


def choose_starting_point(p: int, l: int, r: int) -> StartingPoint:
    """Best valid starting point over both orientations (trick 2).

    Tries ``(l, r)`` and ``(r, l)``; returns the cheaper valid result
    (fewest syndrome XORs).  At least one orientation always succeeds
    for an MDS-decodable pattern; a double failure indicates a logic
    error and raises.
    """
    cands = [sp for sp in (find_starting_point(p, l, r), find_starting_point(p, r, l)) if sp]
    if not cands:
        raise RuntimeError(
            f"Algorithm 2 failed in both orientations for p={p}, l={l}, r={r}"
        )
    return min(cands, key=lambda sp: sp.n_xors)
