"""Argument validation shared by the code implementations.

All the RAID-6 codes in this library validate their parameters through
these helpers so that error messages are uniform and the (easy to get
subtly wrong) constraints live in exactly one place:

* ``p`` must be an odd prime (Liberation/EVENODD/RDP).
* ``k`` is bounded by a per-code maximum (``p`` for Liberation/EVENODD,
  ``p - 1`` for RDP, 255 for GF(2^8) Reed-Solomon).
* erasure lists must name distinct, in-range columns, and at most two of
  them (RAID-6 tolerates exactly two arbitrary column failures).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.utils.primes import is_odd_prime
from repro.utils.words import WORD_BYTES

__all__ = ["check_prime_p", "check_k", "check_element_size", "check_erasures"]


def check_prime_p(p: int) -> int:
    """Validate the prime parameter ``p`` of an array code."""
    p = int(p)
    if not is_odd_prime(p):
        raise ValueError(f"p must be an odd prime, got {p}")
    return p


def check_k(k: int, k_max: int, *, code: str = "code") -> int:
    """Validate a data-disk count ``k`` against a code's maximum."""
    k = int(k)
    if k < 2:
        raise ValueError(f"{code}: RAID-6 needs at least k=2 data disks, got {k}")
    if k > k_max:
        raise ValueError(f"{code}: k={k} exceeds the maximum {k_max} for this code")
    return k


def check_element_size(element_size: int) -> int:
    """Validate an element size in bytes (positive multiple of the word)."""
    element_size = int(element_size)
    if element_size <= 0 or element_size % WORD_BYTES:
        raise ValueError(
            f"element_size must be a positive multiple of {WORD_BYTES}, "
            f"got {element_size}"
        )
    return element_size


def check_erasures(erasures: Sequence[int], n_cols: int) -> tuple[int, ...]:
    """Validate and canonicalise an erasure list.

    Returns the erased column indices as a sorted tuple.  RAID-6 codes
    can recover from at most two erased columns; zero or one erasures are
    also legal inputs (the decoders handle them as easy cases).
    """
    ers = sorted(int(e) for e in erasures)
    if len(set(ers)) != len(ers):
        raise ValueError(f"duplicate erased columns in {list(erasures)!r}")
    if len(ers) > 2:
        raise ValueError(
            f"RAID-6 tolerates at most 2 erasures, got {len(ers)}: {ers}"
        )
    for e in ers:
        if not 0 <= e < n_cols:
            raise ValueError(f"erased column {e} out of range [0, {n_cols})")
    return tuple(ers)
