"""Mod-``p`` index arithmetic.

The paper writes :math:`\\langle x \\rangle` for ``x mod p`` and all of
Algorithms 1-4 are expressed in that notation.  Python's ``%`` already
returns the mathematical (non-negative) residue for negative operands, so
the helpers here exist mainly to make the algorithm transcriptions read
like the paper and to centralise a couple of derived quantities
(``(p-1)/2`` and ``(p+1)/2`` appear constantly).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Mod", "mod_inverse"]


def mod_inverse(a: int, p: int) -> int:
    """Multiplicative inverse of ``a`` modulo prime ``p``.

    Used by the geometric analysis (solving for diagonal intersections)
    and by tests that verify extra-bit placement.

    >>> mod_inverse(3, 7)
    5
    """
    a %= p
    if a == 0:
        raise ZeroDivisionError(f"0 has no inverse mod {p}")
    # Fermat: a^(p-2) mod p.  p is tiny, pow() is exact.
    return pow(a, p - 2, p)


@dataclass(frozen=True)
class Mod:
    """Index arithmetic helper bound to a fixed odd prime ``p``.

    Provides the paper's :math:`\\langle\\cdot\\rangle` operator together
    with the two half-constants used by the Liberation geometry:

    * ``half_minus`` = ``(p-1)/2`` -- the slope constant of the diagonal
      that carries the extra bits.
    * ``half_plus`` = ``(p+1)/2`` -- the multiplier locating common
      expressions (Algorithm 1, line 2).
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 3 or self.p % 2 == 0:
            raise ValueError(f"p must be an odd integer >= 3, got {self.p}")

    @property
    def half_minus(self) -> int:
        """``(p - 1) // 2``."""
        return (self.p - 1) // 2

    @property
    def half_plus(self) -> int:
        """``(p + 1) // 2``."""
        return (self.p + 1) // 2

    def __call__(self, x: int) -> int:
        """The paper's :math:`\\langle x \\rangle = x \\bmod p`."""
        return x % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse mod ``p`` (requires prime ``p``)."""
        return mod_inverse(a, self.p)
