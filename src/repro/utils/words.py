"""Machine-word buffer helpers.

The paper (§II-A) encodes stripes as two-dimensional arrays of *elements*,
each element being a multiple of the machine word size; XORs are performed
on whole machine words so that (with 64-bit words) 64 interleaved
codewords are encoded/decoded in parallel.

We mirror that layout: a strip element is a contiguous ``uint64`` vector
of ``element_size / 8`` words, and a stripe is a C-contiguous NumPy array
``buf[cols, rows, words]``.  Keeping the word axis innermost makes every
element XOR a contiguous streaming operation (cache-friendly, per the
HPC guides: prefer contiguous access and in-place ops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BYTES",
    "WORD_DTYPE",
    "element_words",
    "bytes_to_words",
    "words_view",
    "words_to_bytes",
    "random_words",
    "alloc_stripe",
]

#: Machine word used by the XOR engine (8 bytes = 64 interleaved codewords).
WORD_DTYPE = np.dtype(np.uint64)
WORD_BYTES = WORD_DTYPE.itemsize


def element_words(element_size: int) -> int:
    """Number of machine words in one element of ``element_size`` bytes.

    ``element_size`` must be a positive multiple of the word size
    (paper §II-A: "the element size is restricted to be a multiple of
    the machine's word size").
    """
    if element_size <= 0 or element_size % WORD_BYTES:
        raise ValueError(
            f"element_size must be a positive multiple of {WORD_BYTES} bytes, "
            f"got {element_size}"
        )
    return element_size // WORD_BYTES


def _word_view(data: bytes | bytearray | memoryview) -> np.ndarray:
    buf = np.frombuffer(data, dtype=np.uint8)
    if buf.size % WORD_BYTES:
        raise ValueError(
            f"byte length {buf.size} is not a multiple of the "
            f"{WORD_BYTES}-byte machine word"
        )
    return buf.view(WORD_DTYPE)


def bytes_to_words(data: bytes | bytearray | memoryview) -> np.ndarray:
    """Copy a byte string into a fresh, writable ``uint64`` word vector.

    Exactly one copy (straight from the caller's buffer into the new
    array -- no intermediate ``bytes`` staging).  The length must be a
    multiple of the word size; use padding at a higher layer if
    arbitrary lengths are required (``repro.array`` handles that for
    user I/O).  When the words are only ever *read* -- XOR sources on
    the wire path -- use :func:`words_view` and skip the copy too.
    """
    return _word_view(data).copy()


def words_view(data: bytes | bytearray | memoryview) -> np.ndarray:
    """Zero-copy ``uint64`` view over a bytes-like object.

    The wire path's input shape: received strip payloads feed coding as
    XOR *sources*, which are never written, so a view straight over the
    transport buffer is safe and saves the staging copy per strip.
    Views over immutable buffers (``bytes``) come back read-only;
    attempting to execute a schedule *into* one raises, which is the
    correct failure for a miswired call site.  Under
    ``REPRO_ALIAS_SANITIZER=1`` *every* loan comes back read-only, so
    the same miswiring fails fast over mutable buffers too.
    """
    view = _word_view(data)
    # Imported lazily: words.py sits at the bottom of the package import
    # graph and the analysis package (transitively) imports it.
    from repro.analysis.concurrency import sanitizer

    if sanitizer.enabled():
        view = sanitizer.readonly_words(view)
    return view


def words_to_bytes(words: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_words`."""
    arr = np.ascontiguousarray(words, dtype=WORD_DTYPE)
    return arr.tobytes()


def random_words(shape: tuple[int, ...] | int, seed: int | None = None) -> np.ndarray:
    """Random ``uint64`` array -- test/benchmark payload generator."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**64, size=shape, dtype=WORD_DTYPE)


def alloc_stripe(cols: int, rows: int, element_size: int) -> np.ndarray:
    """Allocate a zeroed C-contiguous stripe ``buf[cols, rows, words]``."""
    return np.zeros((cols, rows, element_words(element_size)), dtype=WORD_DTYPE)
