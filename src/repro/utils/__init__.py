"""Shared low-level utilities for the Liberation-codes reproduction.

This subpackage contains the small, dependency-free building blocks used
throughout the library:

* :mod:`repro.utils.primes` -- primality testing and prime selection for
  the ``p`` parameter of array codes.
* :mod:`repro.utils.modular` -- mod-``p`` index arithmetic matching the
  paper's :math:`\\langle x \\rangle = x \\bmod p` notation.
* :mod:`repro.utils.words` -- element/word buffer helpers used by the
  word-level XOR engine.
* :mod:`repro.utils.validation` -- argument validation with consistent
  error messages.
"""

from repro.utils.primes import is_prime, is_odd_prime, next_prime, primes_up_to
from repro.utils.modular import Mod, mod_inverse
from repro.utils.words import (
    WORD_BYTES,
    WORD_DTYPE,
    bytes_to_words,
    words_to_bytes,
    element_words,
    random_words,
)
from repro.utils.validation import (
    check_prime_p,
    check_k,
    check_element_size,
    check_erasures,
)

__all__ = [
    "is_prime",
    "is_odd_prime",
    "next_prime",
    "primes_up_to",
    "Mod",
    "mod_inverse",
    "WORD_BYTES",
    "WORD_DTYPE",
    "bytes_to_words",
    "words_to_bytes",
    "element_words",
    "random_words",
    "check_prime_p",
    "check_k",
    "check_element_size",
    "check_erasures",
]
