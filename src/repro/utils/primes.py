"""Primality utilities.

Liberation codes (like EVENODD and RDP) are parameterised by an odd prime
``p``.  RAID-6 deployments either pick the smallest prime that fits the
number of data disks (paper §III, "Case (a): p varying with k") or fix a
sufficiently large prime once (Case (b), the paper uses ``p = 31``).

These helpers are deliberately simple deterministic routines: the primes
used by array codes are tiny (``p <= a few hundred``), so trial division
is both the fastest and the most obviously-correct choice.
"""

from __future__ import annotations

__all__ = ["is_prime", "is_odd_prime", "next_prime", "primes_up_to", "prime_for_k"]


def is_prime(n: int) -> bool:
    """Return ``True`` iff ``n`` is a prime number.

    Deterministic trial division by 2, 3 and ``6m +/- 1`` candidates;
    exact for all integer inputs.

    >>> [x for x in range(20) if is_prime(x)]
    [2, 3, 5, 7, 11, 13, 17, 19]
    """
    n = int(n)
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0 or n % 3 == 0:
        return False
    f = 5
    while f * f <= n:
        if n % f == 0 or n % (f + 2) == 0:
            return False
        f += 6
    return True


def is_odd_prime(n: int) -> bool:
    """Return ``True`` iff ``n`` is an *odd* prime (a valid Liberation ``p``)."""
    return n != 2 and is_prime(n)


def next_prime(n: int, *, odd: bool = True) -> int:
    """Return the smallest prime ``>= n``.

    With ``odd=True`` (the default) the result is the smallest *odd*
    prime ``>= n``, which is what array codes need (``p = 2`` is never a
    valid Liberation/EVENODD/RDP parameter).

    >>> next_prime(2)
    3
    >>> next_prime(8)
    11
    >>> next_prime(11)
    11
    """
    n = max(int(n), 2)
    while not is_prime(n) or (odd and n == 2):
        n += 1
    return n


def primes_up_to(limit: int) -> list[int]:
    """Return all primes ``<= limit`` (ascending), via a sieve.

    >>> primes_up_to(12)
    [2, 3, 5, 7, 11]
    """
    limit = int(limit)
    if limit < 2:
        return []
    sieve = bytearray([1]) * (limit + 1)
    sieve[0] = sieve[1] = 0
    p = 2
    while p * p <= limit:
        if sieve[p]:
            sieve[p * p :: p] = bytearray(len(sieve[p * p :: p]))
        p += 1
    return [i for i, flag in enumerate(sieve) if flag]


def prime_for_k(k: int) -> int:
    """Smallest valid Liberation prime for ``k`` data disks (``p >= k``).

    The paper's "p varying with k" configuration (Figs. 5, 7, 10, 12):
    the column size is minimised by choosing the first odd prime that is
    ``>= k``.

    >>> [prime_for_k(k) for k in (2, 3, 4, 5, 6, 7, 8)]
    [3, 3, 5, 5, 7, 7, 11]
    """
    if k < 2:
        raise ValueError(f"RAID-6 needs at least 2 data disks, got k={k}")
    return next_prime(k)
