"""Benchmark harness regenerating the paper's tables and figures.

* :mod:`repro.bench.complexity` -- XOR-count experiments: Table I and
  Figs. 5-8 (normalized encoding/decoding complexity).
* :mod:`repro.bench.throughput` -- timed experiments: Figs. 9-13
  (encoding/decoding GB/s), using the Jerasure-like streaming executor
  so measured time is proportional to schedule op counts.
* :mod:`repro.bench.report` -- text rendering of series in the paper's
  row format, and persistence under ``results/``.

Every figure has a generator function returning plain data (list of
rows), so the pytest benchmarks, the standalone runner
(``benchmarks/run_figures.py``) and the tests all share one source of
truth.
"""

from repro.bench.complexity import (
    encoding_complexity_series,
    decoding_complexity_series,
    table1_rows,
    all_data_pairs,
)
from repro.bench.throughput import (
    ThroughputResult,
    measure_encode,
    measure_decode,
    encode_throughput_series,
    decode_throughput_series,
    element_size_series,
)
from repro.bench.report import format_table, save_series
from repro.bench.wallclock import wall_now, wall_time

__all__ = [
    "encoding_complexity_series",
    "decoding_complexity_series",
    "table1_rows",
    "all_data_pairs",
    "ThroughputResult",
    "measure_encode",
    "measure_decode",
    "encode_throughput_series",
    "decode_throughput_series",
    "element_size_series",
    "format_table",
    "save_series",
    "wall_now",
    "wall_time",
]
