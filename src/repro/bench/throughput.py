"""Timed throughput experiments: Figs. 9-13.

Measurement protocol (mirroring the paper's use of the Jerasure timing
programs):

* codes run in **streaming** execution mode -- one region op per
  scheduled XOR/copy, Jerasure's execution model -- so time is
  proportional to the schedule's operation count;
* the *original* decoder re-derives its decoding matrix and schedule on
  every call (as Jerasure does), while the *optimal* decoder reuses
  per-pattern plans (Algorithms 2-4 are matrix-free index walks);
* throughput = user data bytes per stripe / wall time, best of
  ``repeats`` timing windows of ``inner`` calls each;
* decode throughput is averaged over two-data-column erasure patterns
  (``max_pairs`` caps the pattern count per point to bound runtime).

The same harness also measures the **kernel data plane**
(``execution="kernel"``, optionally ``batch > 1``): schedules lowered
to levelized bulk-XOR slice kernels (:mod:`repro.engine.kernels`),
run over a word-packed multi-stripe buffer
(:func:`repro.parallel.alloc_word_batch`) so each bulk-XOR call covers
the whole batch.  Throughput still counts user data bytes per wall
second -- a batch call processes ``batch`` stripes -- making the
streaming and kernel numbers directly comparable (same geometry, same
bytes, same best-of-window protocol).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.bench.complexity import all_data_pairs
from repro.codes.registry import make_code
from repro.utils.primes import prime_for_k

__all__ = [
    "ThroughputResult",
    "make_bench_code",
    "measure_encode",
    "measure_decode",
    "encode_throughput_series",
    "decode_throughput_series",
    "element_size_series",
]


@dataclass(frozen=True)
class ThroughputResult:
    """One measured point."""

    name: str
    k: int
    p: int
    element_size: int
    gbps: float
    seconds_per_call: float


def make_bench_code(
    name: str, k: int, p: int | None, element_size: int, *, execution: str = "streaming"
):
    """A code instance configured for timing.

    The default stays ``streaming`` (paper-faithful: time proportional
    to op counts); pass ``execution="kernel"`` to measure the native
    bulk-XOR data plane instead.
    """
    return make_code(
        name,
        k,
        p=p if p is not None else prime_for_k(k),
        element_size=element_size,
        execution=execution,
    )


def _filled_stripe(code, seed: int = 0, batch: int = 1) -> np.ndarray:
    """A data-filled, encoded stripe (or word-packed ``batch`` stripes)."""
    rng = np.random.default_rng(seed)
    if batch == 1:
        buf = code.alloc_stripe()
    else:
        from repro.parallel import alloc_word_batch

        buf = alloc_word_batch(code, batch)
    buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
    _coder(code)(buf)
    return buf


def _coder(code, erasures: tuple[int, ...] | None = None):
    """A callable running the code's (batch-shape-agnostic) plan.

    ``code.encode``/``code.decode`` insist on exact single-stripe
    shapes; the compiled plans themselves are width-agnostic, so timing
    goes straight at the plan -- which is also what keeps the timed
    region free of per-call shape checks for the streaming baseline.
    """
    if erasures is None:
        if code._encode_plan is None:
            code._encode_plan = code._compile(code.encode_schedule())
        return code._encode_plan.run
    if code.cache_decode_plans:
        plan = code._decode_plans.get(erasures)
        if plan is None:
            plan = code._compile(code.build_decode_schedule(erasures))
            code._decode_plans[erasures] = plan
        return plan.run

    def rebuild_and_run(buf):
        # The Jerasure-like baseline pays schedule derivation per call
        # by design; keep that cost inside the timed region.
        return code._compile(code.build_decode_schedule(erasures)).run(buf)

    return rebuild_and_run


def _best_window(fn, *, inner: int, repeats: int) -> float:
    """Seconds per call, best-of-``repeats`` windows (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def measure_encode(
    name: str,
    k: int,
    *,
    p: int | None = None,
    element_size: int = 4096,
    inner: int = 10,
    repeats: int = 3,
    execution: str = "streaming",
    batch: int = 1,
) -> ThroughputResult:
    """Encoding throughput of one configuration.

    ``batch > 1`` times one plan call over a word-packed multi-stripe
    buffer and counts every stripe's data bytes: the kernel data
    plane's operating point.
    """
    code = make_bench_code(name, k, p, element_size, execution=execution)
    buf = _filled_stripe(code, batch=batch)
    run = _coder(code)
    run(buf)  # warm plans and the bound-program cache
    sec = _best_window(lambda: run(buf), inner=inner, repeats=repeats)
    return ThroughputResult(
        name, k, code.p, element_size, batch * code.data_bytes / sec / 1e9, sec
    )


def measure_decode(
    name: str,
    k: int,
    *,
    p: int | None = None,
    element_size: int = 4096,
    max_pairs: int = 6,
    inner: int = 3,
    repeats: int = 3,
    execution: str = "streaming",
    batch: int = 1,
) -> ThroughputResult:
    """Decoding throughput averaged over two-data-column patterns.

    Each timed call decodes one erasure pattern in place (the buffer
    contents stay consistent: decoding a consistent stripe is a no-op
    value-wise but performs all the work, exactly like Jerasure's
    timing tools).  ``batch > 1`` decodes the same pattern across a
    word-packed multi-stripe buffer per call -- the bulk-rebuild shape.
    """
    code = make_bench_code(name, k, p, element_size, execution=execution)
    buf = _filled_stripe(code, batch=batch)
    pairs = all_data_pairs(k)
    if len(pairs) > max_pairs:
        stride = len(pairs) / max_pairs
        pairs = [pairs[int(i * stride)] for i in range(max_pairs)]
    per_pair = []
    for pair in pairs:
        run = _coder(code, tuple(pair))
        run(buf)  # warm (rebuilds per call for the uncached original)
        sec = _best_window(lambda: run(buf), inner=inner, repeats=repeats)
        per_pair.append(sec)
    sec = float(np.mean(per_pair))
    return ThroughputResult(
        name, k, code.p, element_size, batch * code.data_bytes / sec / 1e9, sec
    )


def encode_throughput_series(
    k_values: Sequence[int],
    *,
    p: int | None = None,
    element_size: int = 4096,
    names: Sequence[str] = ("liberation-original", "liberation-optimal"),
    inner: int = 10,
    repeats: int = 3,
) -> list[dict]:
    """Fig. 10 (``p=None``) / Fig. 11 (fixed ``p``) data rows.

    The compared algorithms' timing windows are *interleaved*
    (A, B, A, B, ...) and each takes its best window, so slow drifts in
    background load hit both alike -- without this, a few-percent
    algorithmic difference is unmeasurable on a shared machine.
    """
    rows = []
    for k in k_values:
        codes = []
        for name in names:
            code = make_bench_code(name, k, p, element_size)
            buf = _filled_stripe(code)
            code.encode(buf)  # warm plans
            codes.append((name, code, buf))
        best = {name: float("inf") for name in names}
        for _ in range(repeats):
            for name, code, buf in codes:
                t0 = time.perf_counter()
                for _ in range(inner):
                    code.encode(buf)
                best[name] = min(best[name], (time.perf_counter() - t0) / inner)
        row: dict = {"k": k}
        for name, code, _buf in codes:
            row[name] = code.data_bytes / best[name] / 1e9
        rows.append(row)
    return rows


def decode_throughput_series(
    k_values: Sequence[int],
    *,
    p: int | None = None,
    element_size: int = 4096,
    names: Sequence[str] = ("liberation-original", "liberation-optimal"),
    max_pairs: int = 6,
    inner: int = 3,
    repeats: int = 3,
) -> list[dict]:
    """Fig. 12 (``p=None``) / Fig. 13 (fixed ``p``) data rows."""
    rows = []
    for k in k_values:
        row: dict = {"k": k}
        for name in names:
            res = measure_decode(
                name,
                k,
                p=p,
                element_size=element_size,
                max_pairs=max_pairs,
                inner=inner,
                repeats=repeats,
            )
            row[name] = res.gbps
        rows.append(row)
    return rows


def element_size_series(
    p_values: Sequence[int] = (5, 7, 11),
    *,
    log2_sizes: Sequence[int] = (12, 13, 14, 15, 16),
    names: Sequence[str] = ("liberation-original", "liberation-optimal"),
    inner: int = 10,
    repeats: int = 3,
) -> dict[int, list[dict]]:
    """Fig. 9 data: encoding throughput vs element size, ``k = p``.

    Returns ``{p: [{"log2_elem": e, "<name>": gbps, ...}, ...]}``.
    """
    out: dict[int, list[dict]] = {}
    for p in p_values:
        rows = []
        for e in log2_sizes:
            row: dict = {"log2_elem": e}
            for name in names:
                res = measure_encode(
                    name, p, p=p, element_size=2**e, inner=inner, repeats=repeats
                )
                row[name] = res.gbps
            rows.append(row)
        out[p] = rows
    return out
