"""Timed throughput experiments: Figs. 9-13.

Measurement protocol (mirroring the paper's use of the Jerasure timing
programs):

* codes run in **streaming** execution mode -- one region op per
  scheduled XOR/copy, Jerasure's execution model -- so time is
  proportional to the schedule's operation count;
* the *original* decoder re-derives its decoding matrix and schedule on
  every call (as Jerasure does), while the *optimal* decoder reuses
  per-pattern plans (Algorithms 2-4 are matrix-free index walks);
* throughput = user data bytes per stripe / wall time, best of
  ``repeats`` timing windows of ``inner`` calls each;
* decode throughput is averaged over two-data-column erasure patterns
  (``max_pairs`` caps the pattern count per point to bound runtime).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.bench.complexity import all_data_pairs
from repro.codes.registry import make_code
from repro.utils.primes import prime_for_k

__all__ = [
    "ThroughputResult",
    "make_bench_code",
    "measure_encode",
    "measure_decode",
    "encode_throughput_series",
    "decode_throughput_series",
    "element_size_series",
]


@dataclass(frozen=True)
class ThroughputResult:
    """One measured point."""

    name: str
    k: int
    p: int
    element_size: int
    gbps: float
    seconds_per_call: float


def make_bench_code(name: str, k: int, p: int | None, element_size: int):
    """A code instance configured for paper-faithful timing."""
    return make_code(
        name,
        k,
        p=p if p is not None else prime_for_k(k),
        element_size=element_size,
        execution="streaming",
    )


def _filled_stripe(code, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    buf = code.alloc_stripe()
    buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
    code.encode(buf)
    return buf


def _best_window(fn, *, inner: int, repeats: int) -> float:
    """Seconds per call, best-of-``repeats`` windows (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def measure_encode(
    name: str,
    k: int,
    *,
    p: int | None = None,
    element_size: int = 4096,
    inner: int = 10,
    repeats: int = 3,
) -> ThroughputResult:
    """Encoding throughput of one configuration."""
    code = make_bench_code(name, k, p, element_size)
    buf = _filled_stripe(code)
    code.encode(buf)  # warm plans
    sec = _best_window(lambda: code.encode(buf), inner=inner, repeats=repeats)
    return ThroughputResult(
        name, k, code.p, element_size, code.data_bytes / sec / 1e9, sec
    )


def measure_decode(
    name: str,
    k: int,
    *,
    p: int | None = None,
    element_size: int = 4096,
    max_pairs: int = 6,
    inner: int = 3,
    repeats: int = 3,
) -> ThroughputResult:
    """Decoding throughput averaged over two-data-column patterns.

    Each timed call decodes one erasure pattern in place (the buffer
    contents stay consistent: decoding a consistent stripe is a no-op
    value-wise but performs all the work, exactly like Jerasure's
    timing tools).
    """
    code = make_bench_code(name, k, p, element_size)
    buf = _filled_stripe(code)
    pairs = all_data_pairs(k)
    if len(pairs) > max_pairs:
        stride = len(pairs) / max_pairs
        pairs = [pairs[int(i * stride)] for i in range(max_pairs)]
    per_pair = []
    for pair in pairs:
        code.decode(buf, pair)  # warm (no-op for the uncached original)
        sec = _best_window(lambda: code.decode(buf, pair), inner=inner, repeats=repeats)
        per_pair.append(sec)
    sec = float(np.mean(per_pair))
    return ThroughputResult(
        name, k, code.p, element_size, code.data_bytes / sec / 1e9, sec
    )


def encode_throughput_series(
    k_values: Sequence[int],
    *,
    p: int | None = None,
    element_size: int = 4096,
    names: Sequence[str] = ("liberation-original", "liberation-optimal"),
    inner: int = 10,
    repeats: int = 3,
) -> list[dict]:
    """Fig. 10 (``p=None``) / Fig. 11 (fixed ``p``) data rows.

    The compared algorithms' timing windows are *interleaved*
    (A, B, A, B, ...) and each takes its best window, so slow drifts in
    background load hit both alike -- without this, a few-percent
    algorithmic difference is unmeasurable on a shared machine.
    """
    rows = []
    for k in k_values:
        codes = []
        for name in names:
            code = make_bench_code(name, k, p, element_size)
            buf = _filled_stripe(code)
            code.encode(buf)  # warm plans
            codes.append((name, code, buf))
        best = {name: float("inf") for name in names}
        for _ in range(repeats):
            for name, code, buf in codes:
                t0 = time.perf_counter()
                for _ in range(inner):
                    code.encode(buf)
                best[name] = min(best[name], (time.perf_counter() - t0) / inner)
        row: dict = {"k": k}
        for name, code, _buf in codes:
            row[name] = code.data_bytes / best[name] / 1e9
        rows.append(row)
    return rows


def decode_throughput_series(
    k_values: Sequence[int],
    *,
    p: int | None = None,
    element_size: int = 4096,
    names: Sequence[str] = ("liberation-original", "liberation-optimal"),
    max_pairs: int = 6,
    inner: int = 3,
    repeats: int = 3,
) -> list[dict]:
    """Fig. 12 (``p=None``) / Fig. 13 (fixed ``p``) data rows."""
    rows = []
    for k in k_values:
        row: dict = {"k": k}
        for name in names:
            res = measure_decode(
                name,
                k,
                p=p,
                element_size=element_size,
                max_pairs=max_pairs,
                inner=inner,
                repeats=repeats,
            )
            row[name] = res.gbps
        rows.append(row)
    return rows


def element_size_series(
    p_values: Sequence[int] = (5, 7, 11),
    *,
    log2_sizes: Sequence[int] = (12, 13, 14, 15, 16),
    names: Sequence[str] = ("liberation-original", "liberation-optimal"),
    inner: int = 10,
    repeats: int = 3,
) -> dict[int, list[dict]]:
    """Fig. 9 data: encoding throughput vs element size, ``k = p``.

    Returns ``{p: [{"log2_elem": e, "<name>": gbps, ...}, ...]}``.
    """
    out: dict[int, list[dict]] = {}
    for p in p_values:
        rows = []
        for e in log2_sizes:
            row: dict = {"log2_elem": e}
            for name in names:
                res = measure_encode(
                    name, p, p=p, element_size=2**e, inner=inner, repeats=repeats
                )
                row[name] = res.gbps
            rows.append(row)
        out[p] = rows
    return out
