"""Wall-clock access for measurement code.

``repro.bench`` is the project's approved wall-clock seam (see the
sim-seam AST lint in :mod:`repro.analysis.static.astlint`): everything
outside it must take time from an injected clock.  Code that
legitimately needs real time -- the CLI's ``trace`` command timing an
encode, the regression gate stamping a run -- imports these two
functions instead of touching :mod:`time` directly, which keeps the
lint's "no ambient wall clock" guarantee auditable: every wall-clock
read in the tree flows through this module or the sim clock.
"""

from __future__ import annotations

import time

__all__ = ["wall_now", "wall_time"]


def wall_now() -> float:
    """Monotonic seconds for measuring intervals (``perf_counter``)."""
    return time.perf_counter()


def wall_time() -> float:
    """Seconds since the epoch for stamping artifacts (``time.time``)."""
    return time.time()
