"""XOR-count experiments: Table I and Figs. 5-8.

Complexities are *measured* from the actual schedules each
implementation emits (never from closed forms -- the closed forms live
in :mod:`repro.codes.theory` and the tests assert the two agree), then
normalized by the ``k - 1`` lower bound exactly as in the paper.

For decoding, the paper averages over "all the possible erasure
patterns"; the ``k - 1`` lower bound refers to reconstructing missing
*data*, so we average over all ``C(k, 2)`` two-data-column patterns --
the hard case every compared algorithm defines -- and expose the easy
patterns separately.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

from repro.codes.registry import make_code
from repro.utils.primes import next_prime

__all__ = [
    "FIG5_CODES",
    "all_data_pairs",
    "encoding_complexity_point",
    "decoding_complexity_point",
    "encoding_complexity_series",
    "decoding_complexity_series",
    "table1_rows",
]

#: Code families of Figs. 5-8, in the paper's legend order.
FIG5_CODES = ("evenodd", "rdp", "liberation-original", "liberation-optimal")


def _minimal_p(name: str, k: int) -> int:
    """The 'p varying with k' rule: each code's smallest legal prime."""
    if name == "rdp":
        return next_prime(k + 1)
    return next_prime(k)


def _make(name: str, k: int, p: int | None):
    return make_code(name, k, p=_minimal_p(name, k) if p is None else p)


def all_data_pairs(k: int) -> list[tuple[int, int]]:
    """Every two-data-column erasure pattern."""
    return list(itertools.combinations(range(k), 2))


def encoding_complexity_point(name: str, k: int, p: int | None = None) -> float:
    """Normalized encoding complexity (1.0 = the ``k-1`` bound)."""
    code = _make(name, k, p)
    return code.encoding_complexity() / (k - 1)


def decoding_complexity_point(
    name: str, k: int, p: int | None = None, pairs: Sequence[tuple[int, int]] | None = None
) -> float:
    """Normalized decoding complexity averaged over data-column pairs."""
    code = _make(name, k, p)
    if pairs is None:
        pairs = all_data_pairs(k)
    total = sum(code.decoding_xors(pair) for pair in pairs)
    return total / len(pairs) / (2 * code.rows) / (k - 1)


def encoding_complexity_series(
    k_values: Sequence[int], *, p: int | None = None, codes: Sequence[str] = FIG5_CODES
) -> list[dict]:
    """Fig. 5 (``p=None``: p varies with k) / Fig. 6 (fixed ``p``) data.

    Returns one row per ``k``: ``{"k": k, "<code>": normalized, ...}``.
    Codes whose constraints exclude a point (e.g. RDP needs
    ``k <= p-1``) report ``None`` there.
    """
    rows = []
    for k in k_values:
        row: dict = {"k": k}
        for name in codes:
            try:
                row[name] = encoding_complexity_point(name, k, p)
            except ValueError:
                row[name] = None
        rows.append(row)
    return rows


def decoding_complexity_series(
    k_values: Sequence[int],
    *,
    p: int | None = None,
    codes: Sequence[str] = FIG5_CODES,
    max_pairs: int | None = None,
) -> list[dict]:
    """Fig. 7 / Fig. 8 data (see :func:`encoding_complexity_series`).

    ``max_pairs`` caps the number of erasure patterns per point (evenly
    strided subsample) to bound runtime; ``None`` means exhaustive, as
    in the paper.
    """
    rows = []
    for k in k_values:
        pairs = all_data_pairs(k)
        if max_pairs is not None and len(pairs) > max_pairs:
            stride = len(pairs) / max_pairs
            pairs = [pairs[int(i * stride)] for i in range(max_pairs)]
        row: dict = {"k": k}
        for name in codes:
            try:
                row[name] = decoding_complexity_point(name, k, p, pairs)
            except ValueError:
                row[name] = None
        rows.append(row)
    return rows


def decoding_pair_profile(name: str, k: int, p: int | None = None) -> dict:
    """Distribution of decode cost over erasure positions.

    The paper notes the proposed decoder is "either optimal or near
    optimal, depending on the positions of the failed disks"; this
    quantifies that: per-pair normalized complexities, their min / mean
    / max, the share of exactly-optimal pairs, and the worst pair.
    """
    code = _make(name, k, p)
    denom = 2 * code.rows * (k - 1)
    per_pair = {
        pair: code.decoding_xors(pair) / denom for pair in all_data_pairs(k)
    }
    values = sorted(per_pair.values())
    worst = max(per_pair, key=per_pair.get)
    optimal = sum(1 for v in values if v <= 1.0 + 1e-12)
    return {
        "code": name,
        "k": k,
        "p": code.rows if name not in ("evenodd", "rdp") else code.p,
        "pairs": len(values),
        "min": values[0],
        "mean": sum(values) / len(values),
        "max": values[-1],
        "optimal_share": optimal / len(values),
        "worst_pair": worst,
        "per_pair": per_pair,
    }


def table1_rows(k: int = 10) -> list[dict]:
    """Table I: measured characteristics of the representative codes.

    ``w``/``k_max`` are structural; encode/decode/update columns are
    measured on the implementations at the given ``k`` (minimal p).
    """
    from repro.codes.theory import (
        lower_bound_decoding,
        lower_bound_encoding,
        lower_bound_update,
    )

    import numpy as np

    rows = []
    for name in FIG5_CODES:
        code = _make(name, k, None)
        pairs = all_data_pairs(k)
        dec = sum(code.decoding_xors(pr) for pr in pairs) / len(pairs) / (2 * code.rows)
        # Measured average update complexity over every data element.
        buf = code.alloc_stripe()
        rng = np.random.default_rng(0)
        buf[: code.k] = rng.integers(0, 2**64, buf[: code.k].shape, dtype=np.uint64)
        code.encode(buf)
        total = sum(
            code.update(
                buf, c, r, rng.integers(0, 2**64, buf[c, r].shape, dtype=np.uint64)
            )
            for c in range(code.k)
            for r in range(code.rows)
        )
        rows.append(
            {
                "code": name,
                "w": code.rows,
                "p": getattr(code, "p", None),
                "encoding": code.encoding_complexity(),
                "decoding": dec,
                "update": total / (code.k * code.rows),
            }
        )
    rows.append(
        {
            "code": "lower-bound",
            "w": None,
            "p": None,
            "encoding": lower_bound_encoding(k),
            "decoding": lower_bound_decoding(k),
            "update": lower_bound_update(k),
        }
    )
    return rows
