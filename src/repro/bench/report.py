"""Text rendering and persistence of experiment series.

Series are lists of dict rows (as produced by
:mod:`repro.bench.complexity` / :mod:`repro.bench.throughput`);
:func:`format_table` renders them in the aligned row format the
benchmark harness prints, and :func:`save_series` writes them under
``results/`` so every run leaves a comparable artifact.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections.abc import Sequence

__all__ = ["format_table", "save_series", "save_json_report", "results_dir"]


def results_dir(base: str | pathlib.Path | None = None) -> pathlib.Path:
    """The ``results/`` directory (created on demand).

    Defaults to ``results/`` next to the repository's ``benchmarks/``
    (i.e. the current working directory's ``results``).
    """
    d = pathlib.Path(base) if base is not None else pathlib.Path("results")
    d.mkdir(parents=True, exist_ok=True)
    return d


def _fmt(v) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4f}"
    return str(v)


def format_table(rows: Sequence[dict], *, title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n") if title else ""
    cols = list(rows[0].keys())
    cells = [[_fmt(r.get(c)) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def save_series(
    name: str, rows: Sequence[dict], *, title: str | None = None, base=None
) -> pathlib.Path:
    """Render and persist a series under ``results/<name>.txt``."""
    path = results_dir(base) / f"{name}.txt"
    path.write_text(format_table(rows, title=title))
    return path


def save_json_report(
    filename: str,
    series: Sequence[dict],
    *,
    base=None,
    **meta,
) -> pathlib.Path:
    """Persist every series of a run as one machine-readable JSON file.

    ``series`` is a list of ``{"name", "title", "rows"}`` dicts (the
    same rows :func:`save_series` renders as text); extra keyword
    arguments land in the top-level object, so a run can stamp its
    configuration.  The aligned ``results/*.txt`` files stay the
    human-facing view; this file is the one tooling diffs across PRs
    to track the performance trajectory.
    """
    path = results_dir(base) / filename
    payload = {
        "generated_unix": time.time(),
        **meta,
        "series": [
            {
                "name": s["name"],
                "title": s.get("title"),
                "rows": list(s["rows"]),
            }
            for s in series
        ],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
