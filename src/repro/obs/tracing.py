"""Structured spans: deterministic tracing for every layer.

A :class:`Span` is one named, attributed, timed region of work; a
:class:`Tracer` collects them into a trace.  Two properties make this
usable *inside* the deterministic-simulation harness (``repro.sim``)
where ordinary tracing libraries cannot go:

* **Injectable time.**  A tracer never consults a wall clock.  It reads
  time from the ``now`` callable it was constructed with -- typically
  ``VirtualClock.time`` under simulation, ``repro.bench.wall_now`` for
  real measurements -- and falls back to a *logical* tick counter
  (0, 1, 2, ...) when no clock is injected.  Every time source above is
  deterministic under replay, so the same seed produces byte-identical
  traces (:meth:`Tracer.digest` pins that down, exactly like
  ``repro.sim``'s scenario trace digests).

* **Deterministic structure.**  Span ids are sequential, parenting goes
  through a :class:`contextvars.ContextVar` (correct across asyncio
  task switches), and spans are recorded in start order.

Exporters translate a finished trace to JSONL (one span per line) and
to the Chrome ``trace_event`` format, loadable in Perfetto /
``chrome://tracing`` (``X`` complete events; timestamps in
microseconds).

The process-default tracer is *off* by default: hot paths guard with a
single ``active_tracer() is None`` check per schedule run, so disabled
tracing adds no per-op work and no allocations (a property the test
suite asserts with ``tracemalloc``).
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import pathlib
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "set_tracer",
    "use_tracer",
    "spans_to_jsonl",
    "spans_to_chrome",
    "write_jsonl",
    "write_chrome_trace",
    "trace_digest",
]

#: Attribute values allowed on spans (JSON scalars only, so traces are
#: wire-safe and digests canonical).
AttrValue = int | float | str | bool | None


@dataclass
class Span:
    """One named, timed region with JSON-scalar attributes.

    ``duration`` is ``None`` while the span is open; attributes may be
    added after close (e.g. throughput derived from the duration) --
    exporters run strictly after the trace is finished.
    """

    name: str
    span_id: int
    parent_id: int | None
    start: float
    duration: float | None = None
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    def set(self, key: str, value: AttrValue) -> None:
        """Attach/overwrite one attribute."""
        self.attrs[key] = value

    def to_dict(self) -> dict[str, object]:
        """Canonical JSON-ready form (times rounded to nanoseconds, the
        same stabilisation ``repro.sim`` applies to its trace records)."""
        return {
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": round(self.start, 9),
            "duration": None if self.duration is None else round(self.duration, 9),
            "attrs": dict(sorted(self.attrs.items())),
        }


class Tracer:
    """Collects spans; the ``now`` callable is the injected clock seam.

    ``Tracer(now=clock.time)`` records virtual timestamps under
    ``repro.sim``; ``Tracer(now=repro.bench.wall_now)`` records real
    ones.  With no clock at all, a logical counter advances by one at
    every span boundary -- still totally ordered, still deterministic.
    """

    def __init__(self, now: Callable[[], float] | None = None) -> None:
        self._ticks = 0
        self.now: Callable[[], float] = now if now is not None else self._tick
        self.spans: list[Span] = []
        self._next_id = 0
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_obs_current_span", default=None
        )

    def _tick(self) -> float:
        self._ticks += 1
        return float(self._ticks - 1)

    # -- recording ---------------------------------------------------------

    @contextlib.contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[Span]:
        """Open a child span of the current one for the ``with`` body."""
        parent = self._current.get()
        s = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            start=self.now(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(s)  # start order == deterministic record order
        token = self._current.set(s)
        try:
            yield s
        finally:
            self._current.reset(token)
            s.duration = self.now() - s.start

    def clear(self) -> None:
        self.spans.clear()
        self._next_id = 0

    # -- inspection --------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def digest(self) -> str:
        """SHA-256 over the canonical trace (same seed => same digest)."""
        return trace_digest(self.spans)


# -- process-default tracer ---------------------------------------------------

_ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The process-default tracer, or ``None`` when tracing is off.

    Hot paths call this once per schedule run; the ``None`` fast path
    is a single global read, no allocation.
    """
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the process-default tracer; returns the old one."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the process default for a ``with`` body."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


# -- exporters ----------------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One canonical JSON object per line (grep/jq-friendly)."""
    return "".join(
        json.dumps(s.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"
        for s in spans
    )


def spans_to_chrome(spans: Iterable[Span], *, process_name: str = "repro") -> dict:
    """Chrome ``trace_event`` JSON (open in Perfetto / chrome://tracing).

    Spans become ``X`` (complete) events; timestamps and durations are
    microseconds as the format requires.  The logical-clock fallback
    therefore renders as 1 "microsecond" per tick -- fine for structure
    and attribute inspection, meaningless as absolute time.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for s in spans:
        events.append(
            {
                "name": s.name,
                "ph": "X",
                "pid": 0,
                "tid": 0,
                "ts": round(s.start * 1e6, 3),
                "dur": round((s.duration or 0.0) * 1e6, 3),
                "args": {**dict(sorted(s.attrs.items())), "span_id": s.span_id,
                         "parent_id": s.parent_id},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_jsonl(path: str | pathlib.Path, spans: Iterable[Span]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


def write_chrome_trace(
    path: str | pathlib.Path, spans: Iterable[Span], *, process_name: str = "repro"
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(spans_to_chrome(spans, process_name=process_name),
                               indent=2) + "\n")
    return path


def trace_digest(spans: Sequence[Span] | Iterable[Span]) -> str:
    """SHA-256 over the canonical JSONL rendering of a span list."""
    return hashlib.sha256(spans_to_jsonl(spans).encode()).hexdigest()
