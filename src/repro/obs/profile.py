"""Engine profiling hooks: per-schedule spans with XOR accounting.

The paper's contribution is a constant-factor XOR-count/throughput win;
these helpers make that visible at runtime.  Schedule executions
(``XorScheduleCode.encode``/``decode``) and schedule compilations
(``repro.engine.executor.compile_schedule``) emit spans carrying:

* ``xors`` -- the schedule's XOR count (a property of the schedule,
  audited by ``repro analyze``; execution strategy can never change it);
* ``ops`` -- total scheduled operations (XORs + free copies);
* ``bytes`` -- stripe bytes the run touched;
* ``cache`` -- plan-cache outcome (``"hit"``/``"miss"``) for the
  compiled-plan caches;
* ``kernel_*`` -- lowering shape when the run used a levelized
  bulk-XOR kernel plan (:mod:`repro.engine.kernels`): ``kernel_levels``,
  ``kernel_bulk_calls``, ``kernel_ops``, ``kernel_max_width`` (widest
  single bulk XOR, in source slices), ``kernel_cell_xors`` (always equal
  to ``xors`` -- lowering conserves XOR work by construction);
* ``mxors_per_s`` / ``gbps`` -- effective XOR throughput and byte
  throughput, derived from the span's measured duration at close (only
  when a real clock is injected; the logical-tick fallback yields
  durations that are ordering, not time).

So ``repro trace`` on an encode shows *exactly* where
``liberation-optimal`` beats the bit-matrix baseline: same span names,
same byte counts, different ``xors`` and duration.

Everything here is a thin veneer over :mod:`repro.obs.tracing`; the
disabled path (no active tracer) never reaches this module.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from repro.obs.tracing import Span, Tracer

__all__ = ["schedule_span", "finalize_rates", "kernel_attrs"]


def kernel_attrs(span: Span, plan: object) -> None:
    """Stamp a schedule span with the kernel plan's lowering shape.

    Duck-typed on ``plan.stats()`` so the call site stays executor-
    agnostic: fused and streaming plans have no ``stats`` and produce no
    attributes.  ``kernel_ops`` replaces the stats key ``kernel_ops``
    verbatim; the others gain the ``kernel_`` prefix, keeping the plain
    ``xors``/``ops`` names reserved for schedule-level accounting.
    """
    stats = getattr(plan, "stats", None)
    if stats is None:
        return
    for name, value in stats().items():
        key = name if name.startswith("kernel_") else f"kernel_{name}"
        span.set(key, value)


def finalize_rates(span: Span) -> None:
    """Derive throughput attributes from a closed span's duration.

    No-op when the duration is zero/unknown (logical clocks, virtual
    time that did not advance): rates from fake time would be noise.
    """
    d = span.duration
    if not d or d <= 0:
        return
    xors = span.attrs.get("xors")
    nbytes = span.attrs.get("bytes")
    if isinstance(xors, int) and xors > 0:
        span.set("mxors_per_s", round(xors / d / 1e6, 3))
    if isinstance(nbytes, int) and nbytes > 0:
        span.set("gbps", round(nbytes / d / 1e9, 4))


@contextlib.contextmanager
def schedule_span(
    tracer: Tracer,
    kind: str,
    *,
    code: str,
    xors: int,
    ops: int,
    nbytes: int,
    cache: str | None = None,
    **extra: int | float | str | bool | None,
) -> Iterator[Span]:
    """Span around one schedule execution (``kind``: encode/decode/...).

    Callers are expected to have checked ``active_tracer()`` already;
    the hot-path guard lives at the call site so the disabled path
    never imports or allocates anything here.
    """
    attrs: dict[str, int | float | str | bool | None] = {
        "code": code,
        "xors": xors,
        "ops": ops,
        "bytes": nbytes,
        **extra,
    }
    if cache is not None:
        attrs["cache"] = cache
    with tracer.span(kind, **attrs) as s:
        yield s
    finalize_rates(s)
