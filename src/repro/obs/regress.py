"""The benchmark-regression gate behind ``repro bench regress``.

Runs a bounded performance suite -- XOR counts (exact, deterministic)
plus streaming-executor throughput (measured, best-of-window) -- and
writes the result as a flat metric map to ``BENCH_perf.json`` at the
repository top level, starting the bench trajectory that CI diffs
across runs.  A second invocation loads the previous file as the
baseline, re-measures, and exits non-zero when any metric regressed
beyond tolerance:

* ``direction: higher`` metrics (throughput) regress when
  ``current < baseline * (1 - tolerance)``;
* ``direction: lower`` metrics (XOR counts) regress when
  ``current > baseline * (1 + tolerance)`` -- and XOR counts are exact,
  so in practice *any* increase trips a sane tolerance.

Improvements move the stored baseline forward automatically (the new
file simply replaces the old), so the gate ratchets: CI restores the
previous ``BENCH_perf.json`` from its cache, runs the gate as a soft
warning on PRs, and hard-fails the nightly run.

The full (non-``quick``) sweep also measures the **kernel data plane**
(``execution="kernel"``, word-packed ``batch=8``) at the gate
geometries -- fig. 10 encode ``k=10`` and fig. 12 decode ``k=11``,
both ``p=11``/4 KB -- and derives ``kernel_speedup/*`` metrics against
the pre-kernel streaming baselines frozen in
:data:`KERNEL_BASELINE_GBPS`.  Those speedups are additionally held to
an *absolute floor* (:data:`KERNEL_SPEEDUP_FLOOR`, the paper-repro
target of >= 5x): unlike the ratchet, the floor applies on every run,
including the first, with the same noise tolerance.  Quick mode skips
the kernel sweep entirely -- its timing windows are too short for a
floor to be meaningful, and the PR gate is soft anyway; the nightly
full run is where the floor is hard.

This module contains no wall-clock calls of its own: measurement
happens inside :mod:`repro.bench` (the approved wall-clock seam), and
run stamps come from :func:`repro.bench.wallclock.wall_time`.
"""

from __future__ import annotations

import json
import pathlib
import platform
from collections.abc import Callable
from dataclasses import dataclass

from repro.bench.complexity import all_data_pairs
from repro.bench.throughput import measure_decode, measure_encode
from repro.bench.wallclock import wall_now, wall_time
from repro.codes.registry import make_code
from repro.utils.primes import prime_for_k

__all__ = [
    "DEFAULT_PERF_PATH",
    "DEFAULT_TOLERANCE",
    "KERNEL_BASELINE_GBPS",
    "KERNEL_SPEEDUP_FLOOR",
    "PerfFileError",
    "Delta",
    "run_perf_suite",
    "compare",
    "check_floors",
    "load_perf",
    "save_perf",
    "regress",
]

SCHEMA = 1
DEFAULT_TOLERANCE = 0.15
#: The top-level bench-trajectory file (repo root, not ``results/``).
DEFAULT_PERF_PATH = "BENCH_perf.json"

#: Code families the gate watches (the paper's comparison pair).
_FAMILIES = ("liberation-optimal", "liberation-original")

#: Streaming data-plane throughput (GB/s) at the gate geometries,
#: recorded *before* the kernel data plane landed (fig. 10 encode
#: ``k=10 p=11`` and fig. 12 decode ``k=11 p=11``, 4 KB elements).
#: Frozen constants, not re-measured: ``kernel_speedup/*`` divides the
#: measured kernel throughput by these, so the speedup is "vs the
#: pre-kernel repo", not "vs whatever the machine does today".
KERNEL_BASELINE_GBPS = {"encode": 1.7606, "decode": 1.7959}

#: Absolute floor on the ``kernel_speedup/*`` metrics (the >= 5x
#: acceptance target for the kernel data plane).  Enforced by
#: :func:`check_floors` with the gate's usual noise tolerance.
KERNEL_SPEEDUP_FLOOR = 5.0

#: Metric name -> required minimum value (direction: higher).
FLOORS = {
    "kernel_speedup/encode/p11/4KB": KERNEL_SPEEDUP_FLOOR,
    "kernel_speedup/decode/p11/4KB": KERNEL_SPEEDUP_FLOOR,
}


class PerfFileError(ValueError):
    """A perf baseline file exists but cannot serve as a baseline.

    Raised for empty files, invalid JSON, and payloads without a
    ``metrics`` map -- and for an *explicitly requested* baseline path
    that does not exist.  ``repro bench regress`` maps this to its own
    exit code (2) so CI can tell "baseline infrastructure broken" from
    "performance regressed" (1) and "clean" (0).
    """


@dataclass(frozen=True)
class Delta:
    """One metric compared across two runs."""

    metric: str
    baseline: float
    current: float
    direction: str  # "higher" or "lower" is better
    tolerance: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else float("inf")

    @property
    def regressed(self) -> bool:
        if self.direction == "higher":
            return self.current < self.baseline * (1.0 - self.tolerance)
        return self.current > self.baseline * (1.0 + self.tolerance)

    def row(self) -> dict:
        """Table row for ``repro.bench.report.format_table``."""
        return {
            "metric": self.metric,
            "baseline": round(self.baseline, 4),
            "current": round(self.current, 4),
            "ratio": round(self.ratio, 4),
            "verdict": "REGRESSED" if self.regressed else "ok",
        }


def _decode_xors(name: str, k: int, max_pairs: int = 4) -> float:
    """Average decode XORs over a strided sample of data-column pairs."""
    code = make_code(name, k, p=prime_for_k(k))
    pairs = all_data_pairs(k)
    if len(pairs) > max_pairs:
        stride = len(pairs) / max_pairs
        pairs = [pairs[int(i * stride)] for i in range(max_pairs)]
    return sum(code.decoding_xors(pr) for pr in pairs) / len(pairs)


def run_perf_suite(
    *,
    quick: bool = False,
    on_progress: Callable[[str], None] | None = None,
) -> dict:
    """Measure the gate's metric set; returns the ``BENCH_perf`` payload.

    ``quick`` shrinks the sweep to one geometry with short timing
    windows (used by the test suite and the PR soft gate); the full
    sweep adds a second ``k`` and the baseline family's throughput.
    """

    def progress(what: str) -> None:
        if on_progress is not None:
            on_progress(what)

    metrics: dict[str, dict] = {}

    def put(name: str, value: float, unit: str, direction: str) -> None:
        metrics[name] = {"value": value, "unit": unit, "direction": direction}

    ks = (6,) if quick else (6, 10)
    # XOR counts: exact schedule properties, zero measurement noise --
    # the cheapest regression tripwire the paper's metric allows.
    for name in _FAMILIES:
        for k in ks:
            progress(f"xor counts: {name} k={k}")
            code = make_code(name, k, p=prime_for_k(k))
            put(f"encode_xors/{name}/k{k}", float(code.encoding_xors()),
                "xors", "lower")
            put(f"decode_xors/{name}/k{k}", _decode_xors(name, k),
                "xors", "lower")

    # Throughput: streaming executor (paper-faithful), best-of-window
    # timing so background noise cannot manufacture a regression.
    inner, repeats = (20, 5) if quick else (20, 6)
    tp_families = ("liberation-optimal",) if quick else _FAMILIES
    for name in tp_families:
        for k in ks:
            progress(f"encode throughput: {name} k={k}")
            res = measure_encode(name, k, element_size=4096,
                                 inner=inner, repeats=repeats)
            put(f"encode_gbps/{name}/k{k}/4KB", res.gbps, "GB/s", "higher")
    progress("decode throughput: liberation-optimal k=6")
    res = measure_decode("liberation-optimal", 6, element_size=4096,
                         max_pairs=2, inner=6, repeats=4 if quick else 5)
    put("decode_gbps/liberation-optimal/k6/4KB", res.gbps, "GB/s", "higher")

    if not quick:
        # Kernel data plane at the acceptance geometries: one compiled
        # KernelPlan bound over a word-packed batch of 8 stripes (the
        # operating point that amortises the per-call dispatch floor).
        # Long best-of windows: the floor below is an absolute check,
        # so these need to be the most noise-robust numbers in the
        # suite.
        progress("kernel data plane: encode k=10 p=11")
        res = measure_encode("liberation-optimal", 10, element_size=4096,
                             inner=4, repeats=24, execution="kernel", batch=8)
        put("kernel_gbps/encode/p11/4KB", res.gbps, "GB/s", "higher")
        put("kernel_speedup/encode/p11/4KB",
            res.gbps / KERNEL_BASELINE_GBPS["encode"], "x", "higher")
        progress("kernel data plane: decode k=11 p=11")
        res = measure_decode("liberation-optimal", 11, element_size=4096,
                             max_pairs=3, inner=3, repeats=16,
                             execution="kernel", batch=8)
        put("kernel_gbps/decode/p11/4KB", res.gbps, "GB/s", "higher")
        put("kernel_speedup/decode/p11/4KB",
            res.gbps / KERNEL_BASELINE_GBPS["decode"], "x", "higher")

    # Object-gateway cost: wall-clock ops/s of the sim-seam workload
    # (virtual clock + in-memory transport, so no sockets -- safe for
    # the quick/tier-1 path).  The op stream is deterministic, so this
    # times exactly the gateway + cluster code path, best-of-repeats.
    # Lazy import: the gateway pulls in the cluster stack, which the
    # XOR-only paths of this module must not require.
    from repro.gateway.bench import WorkloadConfig, run_sim_bench, run_socket_bench

    progress("gateway ops: sim workload")
    sim_cfg = WorkloadConfig(
        seed=17, n_objects=12, object_size=768, n_ops=120, rate=4000.0
    )
    run_sim_bench(sim_cfg, n_stripes=64)  # untimed warmup: imports, caches
    best_sim = 0.0
    for _ in range(2 if quick else 3):
        t0 = wall_now()
        rep = run_sim_bench(sim_cfg, n_stripes=64)
        best_sim = max(best_sim, (rep.ok + rep.shed + rep.errors) / (wall_now() - t0))
    put("gateway_ops/sim/mixed", best_sim, "ops/s", "higher")

    if not quick:
        # Saturation against real loopback sockets: the measured-load
        # half of the gateway story (admission control on, zipfian mix).
        progress("gateway saturation: socket micro-bench")
        sock_cfg = WorkloadConfig(
            seed=17, n_objects=12, object_size=768, n_ops=240, rate=4000.0
        )
        best_tput, best_p50 = 0.0, float("inf")
        for _ in range(3):
            rep = run_socket_bench(sock_cfg, n_stripes=64)
            best_tput = max(best_tput, rep.throughput_ops)
            if "get" in rep.latency:
                best_p50 = min(best_p50, rep.latency["get"]["p50"])
        put("gateway_ops/socket/mixed", best_tput, "ops/s", "higher")
        if best_p50 < float("inf"):
            put("gateway_get_p50_ms/socket", best_p50 * 1e3, "ms", "lower")

    return {
        "schema": SCHEMA,
        "generated_unix": wall_time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "metrics": metrics,
    }


def compare(baseline: dict, current: dict, *, tolerance: float = DEFAULT_TOLERANCE) -> list[Delta]:
    """Per-metric deltas over the metrics both runs share.

    Metrics present in only one run are ignored: adding a metric must
    not fail the gate, and removing one is a review-visible diff of the
    checked-in ``BENCH_perf.json``.
    """
    deltas: list[Delta] = []
    base_metrics = baseline.get("metrics", {})
    for name, cur in sorted(current.get("metrics", {}).items()):
        base = base_metrics.get(name)
        if base is None:
            continue
        deltas.append(
            Delta(
                metric=name,
                baseline=float(base["value"]),
                current=float(cur["value"]),
                direction=cur.get("direction", "higher"),
                tolerance=tolerance,
            )
        )
    return deltas


def check_floors(
    current: dict, *, tolerance: float = DEFAULT_TOLERANCE
) -> list[Delta]:
    """Absolute-floor deltas for the current run's floored metrics.

    Floors reuse :class:`Delta` with the floor as the "baseline", so
    the verdict semantics (direction higher, noise tolerance) and the
    report row match the ratchet's.  Unlike the ratchet, floors do not
    need a previous run: a metric below its floor regresses even on the
    first run.  Metrics the current run did not measure (quick mode)
    are skipped.
    """
    deltas = []
    metrics = current.get("metrics", {})
    for name, floor in sorted(FLOORS.items()):
        cur = metrics.get(name)
        if cur is None:
            continue
        deltas.append(
            Delta(
                metric=f"{name} [floor]",
                baseline=float(floor),
                current=float(cur["value"]),
                direction="higher",
                tolerance=tolerance,
            )
        )
    return deltas


def load_perf(path: str | pathlib.Path, *, required: bool = False) -> dict | None:
    """Load a ``BENCH_perf.json``.

    An absent file returns ``None`` (the legitimate first-run case)
    unless ``required`` -- an explicitly requested baseline that is
    missing is an infrastructure error, not a first run.  A file that
    exists but is empty, is not JSON, or lacks a ``metrics`` map raises
    :class:`PerfFileError` in either mode: silently ratcheting past a
    corrupt baseline would erase the trajectory it anchors.
    """
    path = pathlib.Path(path)
    if not path.exists():
        if required:
            raise PerfFileError(f"baseline file not found: {path}")
        return None
    text = path.read_text()
    if not text.strip():
        raise PerfFileError(f"baseline file is empty: {path}")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PerfFileError(f"baseline file is not valid JSON: {path} ({exc})") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("metrics"), dict):
        raise PerfFileError(
            f"baseline file has no 'metrics' map: {path} "
            "(expected a payload written by 'repro bench regress')"
        )
    return payload


def save_perf(payload: dict, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def regress(
    *,
    out_path: str | pathlib.Path = DEFAULT_PERF_PATH,
    baseline_path: str | pathlib.Path | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    quick: bool = False,
    on_progress: Callable[[str], None] | None = None,
) -> tuple[list[Delta], dict, dict | None]:
    """Run the gate: measure, persist, diff against the baseline.

    Returns ``(deltas, current_payload, baseline_payload)``; the
    baseline is the previous ``out_path`` contents unless
    ``baseline_path`` points elsewhere (CI restores its cached copy
    through that seam, and the 2x-slowdown test fixture injects its
    doctored baseline the same way).  First runs have no baseline and
    no ratchet deltas, but :func:`check_floors` still applies to
    whatever floored metrics the run measured -- the >= 5x kernel
    target holds from day one, not only relative to a previous run.
    An explicit ``baseline_path`` that is missing or unreadable raises
    :class:`PerfFileError` (the baseline load happens *before* the
    measurement sweep, so a broken baseline fails fast).
    """
    if baseline_path is not None:
        baseline = load_perf(baseline_path, required=True)
    else:
        baseline = load_perf(out_path)
    current = run_perf_suite(quick=quick, on_progress=on_progress)
    save_perf(current, out_path)
    deltas = compare(baseline, current, tolerance=tolerance) if baseline else []
    deltas += check_floors(current, tolerance=tolerance)
    return deltas, current, baseline
