"""Unified observability: tracing, metrics, profiling, regression gate.

``repro.obs`` is the dependency-free observability layer every other
subsystem reports through:

* :mod:`repro.obs.tracing` -- structured spans on an *injected* clock
  (deterministic under ``repro.sim``'s ``VirtualClock``; byte-identical
  trace digests across replays), with JSONL and Chrome ``trace_event``
  exporters;
* :mod:`repro.obs.metrics` -- counters, gauges and mergeable log2
  histograms (grown out of ``repro.cluster.metrics``), with a
  Prometheus text-exposition formatter served by cluster nodes;
* :mod:`repro.obs.profile` -- engine hooks emitting per-schedule spans
  (XOR count, bytes, plan-cache hit/miss, effective throughput);
* :mod:`repro.obs.regress` -- the ``repro bench regress`` gate that
  diffs ``BENCH_perf.json`` across runs and fails on regression.

Design constraint: this package never touches a wall clock or ambient
randomness -- time arrives via injection (a ``Clock``/callable) or not
at all, so the sim-seam AST lint holds over ``repro.obs`` exactly as it
does over the rest of the library (it is deliberately *not* an exempt
seam; see ``repro.analysis.static.astlint``).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    to_prometheus,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    active_tracer,
    set_tracer,
    spans_to_chrome,
    spans_to_jsonl,
    trace_digest,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "to_prometheus",
    "Span",
    "Tracer",
    "active_tracer",
    "set_tracer",
    "use_tracer",
    "spans_to_jsonl",
    "spans_to_chrome",
    "trace_digest",
    "write_jsonl",
    "write_chrome_trace",
]
