"""Process-wide metrics: counters, gauges, mergeable log2 histograms.

Grown out of ``repro.cluster.metrics`` (which now re-exports this
module for compatibility) into the project-wide metrics layer:

* plain-int :class:`Counter` and :class:`Gauge` (safe under asyncio's
  cooperative scheduling -- no threads, no locks);
* :class:`Histogram` buckets observations on a fixed log2 grid, so
  snapshots are bounded *and mergeable*: summing two histograms'
  buckets elementwise yields exactly the histogram of the combined
  observation stream, at the grid's resolution;
* :class:`MetricsRegistry` is a named bag of the above with
  JSON-serialisable snapshots, cross-node merging, table rendering and
  a Prometheus text-exposition formatter
  (:func:`to_prometheus`, served by cluster nodes via the ``metrics``
  verb).

A process-default registry (:func:`default_registry`) exists for
library-level instrumentation that has no obvious owner object; the
cluster node and client keep per-instance registries as before.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "quantiles_from_buckets",
    "set_default_registry",
    "to_prometheus",
]


def quantiles_from_buckets(
    base: float, counts: Iterable[int], qs: Iterable[float]
) -> list[float]:
    """Interpolated quantile estimates from a log2 bucket vector.

    :meth:`Histogram.quantile` answers with the containing bucket's
    *upper edge* -- a deliberate <=2x overestimate that is ideal for
    alarm thresholds but too coarse for a latency report where p50 and
    p99 may share a bucket.  This estimator instead interpolates
    linearly *within* the containing bucket (bucket ``i >= 1`` spans
    ``(base * 2**(i-1), base * 2**i]``; bucket 0 spans ``[0, base]``),
    assuming observations are uniform inside a bucket.  The estimate is
    therefore always inside the containing bucket -- error bounded by
    one bucket width -- and monotone in ``q``.

    Returns one estimate per requested quantile, in request order; an
    empty histogram estimates 0.0 everywhere.  This is the estimator
    behind the workload driver's p50/p90/p99 latency report.
    """
    counts = list(counts)
    total = sum(counts)
    out: list[float] = []
    for q in qs:
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if total == 0:
            out.append(0.0)
            continue
        rank = max(1, math.ceil(q * total))
        seen = 0
        for i, c in enumerate(counts):
            if c and seen + c >= rank:
                lo = 0.0 if i == 0 else base * (2 ** (i - 1))
                hi = base * (2**i)
                frac = (rank - seen) / c
                out.append(lo + frac * (hi - lo))
                break
            seen += c
        else:  # pragma: no cover - rank <= total guarantees a bucket
            out.append(base * (2 ** (len(counts) - 1)))
    return out


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A value that goes up and down (queue depth, live nodes, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Log2-bucketed distribution (for request latencies, sizes...).

    Bucket ``i >= 1`` counts observations in ``(base * 2**(i-1),
    base * 2**i]``; bucket 0 holds everything ``<= base``, including
    exactly 0.  Quantiles read back the *upper edge* of the containing
    bucket (a <=2x overestimate, plenty for spotting a slow node) --
    so with only zeros observed, every quantile reports ``base``, never
    0: bucket 0's upper edge is ``base * 2**0 == base``, and "<= base"
    is the honest resolution statement the grid can make.

    Bucket counts are mergeable by construction: elementwise sums over
    equal ``base`` grids are exact (see :meth:`MetricsRegistry.merge`).
    """

    __slots__ = ("name", "base", "counts", "total", "sum")

    N_BUCKETS = 32

    def __init__(self, name: str, *, base: float = 1e-4) -> None:
        self.name = name
        self.base = float(base)
        self.counts = [0] * self.N_BUCKETS
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram observations must be >= 0")
        idx = 0 if value <= self.base else int(math.log2(value / self.base)) + 1
        self.counts[min(idx, self.N_BUCKETS - 1)] += 1
        self.total += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the ``q``-quantile (0 if empty).

        Note the bucket-0 edge case documented on the class: a
        distribution of exact zeros reports ``base`` (the bucket's
        upper edge), not 0.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.total))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.base * (2**i)
        return self.base * (2 ** (self.N_BUCKETS - 1))

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        """Interpolated estimates (see :func:`quantiles_from_buckets`).

        Unlike :meth:`quantile` this does not round up to the bucket
        edge, so p50/p90/p99 stay distinguishable inside one bucket --
        what latency reports want.  :meth:`quantile` (and the snapshot
        fields built on it) keep the conservative upper-edge semantics.
        """
        return quantiles_from_buckets(self.base, self.counts, qs)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> dict:
        """JSON view; ``base``/``buckets`` let exporters render the
        full distribution and make snapshots mergeable downstream."""
        return {
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "base": self.base,
            "buckets": list(self.counts),
        }

    @staticmethod
    def stats_from_buckets(base: float, counts: list[int], total: int, sum_: float) -> dict:
        """Derived stats of a (possibly merged) bucket vector -- the
        same shape :meth:`snapshot` produces."""

        def q(frac: float) -> float:
            if total == 0:
                return 0.0
            rank = max(1, math.ceil(frac * total))
            seen = 0
            for i, c in enumerate(counts):
                seen += c
                if seen >= rank:
                    return base * (2**i)
            return base * (2 ** (len(counts) - 1))

        return {
            "count": total,
            "sum": sum_,
            "mean": sum_ / total if total else 0.0,
            "p50": q(0.50),
            "p95": q(0.95),
            "p99": q(0.99),
            "base": base,
            "buckets": list(counts),
        }


class MetricsRegistry:
    """A named bag of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            g = self._gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str, *, base: float = 1e-4) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            h = self._histograms[name] = Histogram(name, base=base)
            return h

    def get(self, name: str) -> int:
        """Current value of a counter (0 if never touched)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def snapshot(self) -> dict:
        """JSON-serialisable view: counters / gauges / histograms.

        The ``gauges`` key is omitted when empty, keeping the wire
        shape of pre-``repro.obs`` nodes byte-compatible.
        """
        snap: dict = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }
        if self._gauges:
            snap["gauges"] = {n: g.value for n, g in sorted(self._gauges.items())}
        return snap

    @staticmethod
    def rows(snapshot: dict, *, prefix: str = "") -> list[dict]:
        """Flatten a snapshot into table rows for ``format_table``."""
        out: list[dict] = []
        for name, value in snapshot.get("counters", {}).items():
            out.append({"metric": prefix + name, "value": value})
        for name, value in snapshot.get("gauges", {}).items():
            out.append({"metric": prefix + name, "value": value})
        for name, h in snapshot.get("histograms", {}).items():
            out.append(
                {
                    "metric": f"{prefix}{name} (n={h['count']})",
                    "value": f"mean={h['mean']:.4g} p95={h['p95']:.4g}",
                }
            )
        return out

    @staticmethod
    def merge(snapshots: Iterable[dict]) -> dict:
        """Merge snapshots: counters and gauges sum; histogram buckets
        sum elementwise (exact at grid resolution by construction).

        Quantiles of the merged histogram are recomputed from the
        merged buckets -- as accurate as any single node's -- but the
        snapshot keeps the cross-node caveat: merged quantiles describe
        the *union* stream and say nothing about per-node tails, so a
        single slow node can hide inside a healthy-looking merged p99
        (read per-node snapshots to localise).  Histograms from
        pre-``buckets`` snapshots (no mergeable state) are skipped.
        Mixing grids (different ``base``) for the same name raises.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        hists: dict[str, dict] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():
                gauges[name] = gauges.get(name, 0.0) + value
            for name, h in snap.get("histograms", {}).items():
                if "buckets" not in h:
                    continue  # legacy snapshot: nothing mergeable
                acc = hists.get(name)
                if acc is None:
                    hists[name] = {
                        "base": h["base"],
                        "counts": list(h["buckets"]),
                        "total": h["count"],
                        "sum": h["sum"],
                    }
                    continue
                if acc["base"] != h["base"] or len(acc["counts"]) != len(h["buckets"]):
                    raise ValueError(
                        f"histogram {name!r}: cannot merge differing log2 grids"
                    )
                acc["counts"] = [a + b for a, b in zip(acc["counts"], h["buckets"])]
                acc["total"] += h["count"]
                acc["sum"] += h["sum"]
        merged_hists = {
            name: {
                **Histogram.stats_from_buckets(
                    acc["base"], acc["counts"], acc["total"], acc["sum"]
                ),
                "caveat": "merged across nodes: bucket-exact, but per-node tails are not visible",
            }
            for name, acc in sorted(hists.items())
        }
        out: dict = {
            "counters": dict(sorted(counters.items())),
            "histograms": merged_hists,
        }
        if gauges:
            out["gauges"] = dict(sorted(gauges.items()))
        return out


# -- process-default registry -------------------------------------------------

_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry for instrumentation with no owner."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-default registry (tests); returns the old one."""
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, registry
    return previous


# -- Prometheus text exposition ----------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize to the Prometheus metric-name alphabet."""
    out = "".join(ch if ch.isalnum() or ch in "_:" else "_" for ch in name)
    return out if not out[:1].isdigit() else f"_{out}"


def _prom_labels(labels: dict[str, str] | None, extra: dict[str, str] | None = None) -> str:
    merged = {**(labels or {}), **(extra or {})}
    if not merged:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + body + "}"


def _prom_num(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    return format(value, ".10g")


def to_prometheus(
    snapshot: dict,
    *,
    prefix: str = "repro_",
    labels: dict[str, str] | None = None,
) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; histograms render
    as cumulative ``_bucket{le=...}`` series over the log2 grid's upper
    edges plus ``_sum``/``_count``.  ``labels`` (e.g.
    ``{"column": "3"}``) are attached to every sample, which is how the
    cluster's per-node endpoints stay aggregatable.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(f"{prefix}{name}_total")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_prom_labels(labels)} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(f"{prefix}{name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{_prom_labels(labels)} {_prom_num(value)}")
    for name, h in snapshot.get("histograms", {}).items():
        metric = _prom_name(f"{prefix}{name}")
        lines.append(f"# TYPE {metric} histogram")
        buckets = h.get("buckets")
        if buckets is not None:
            base = h["base"]
            cum = 0
            last = max(
                (i for i, c in enumerate(buckets) if c), default=-1
            )
            for i in range(last + 1):
                cum += buckets[i]
                le = _prom_num(base * (2**i))
                lines.append(
                    f"{metric}_bucket{_prom_labels(labels, {'le': le})} {cum}"
                )
        lines.append(
            f"{metric}_bucket{_prom_labels(labels, {'le': '+Inf'})} {h['count']}"
        )
        lines.append(f"{metric}_sum{_prom_labels(labels)} {_prom_num(h['sum'])}")
        lines.append(f"{metric}_count{_prom_labels(labels)} {h['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
