"""Differential fuzzing: many oracles, one source of truth.

The paper's central claim is *exact equivalence under optimality*: the
Algorithm 1-4 schedules must produce byte-identical codewords to the
original bit-matrix Liberation path at strictly lower XOR cost.  That
makes cross-implementation comparison the cheapest possible oracle --
no hand-written expected values, just "these independently derived
paths must agree on every byte".  A :class:`StripeCase` drives one
random stripe through every pair:

* **code vs. code** -- :class:`~repro.codes.liberation.LiberationOptimal`
  (Algorithms 1-4) against :class:`~repro.codes.liberation.LiberationOriginal`
  (bit-matrix dumb/smart scheduling), encode and decode;
* **executor vs. executor** -- the same schedule run through
  :func:`~repro.engine.executor.execute_bits` (bit-plane reference),
  the fused :class:`~repro.engine.executor.CompiledSchedule` (per-group
  and levelized-batch modes), the op-at-a-time
  :class:`~repro.engine.executor.StreamingSchedule`, and the levelized
  bulk-XOR :class:`~repro.engine.kernels.KernelPlan` -- both on a
  single stripe and bound wide over a word-packed two-stripe batch
  (the kernel data plane's layout);
* **round-trip** -- encode, erase any <= 2 columns, decode, compare to
  the original.

:func:`fuzz` interleaves stripe cases with whole-cluster scenarios
(:mod:`repro.sim.scenario`, which adds the ClusterArray-vs-model
oracles), fails on the first divergence, greedily shrinks the failing
case (:mod:`repro.sim.shrink`) and writes a replayable JSON repro.

``code_factory`` is injected everywhere so the harness can test
*itself*: plant a code with one flipped XOR and the fuzzer must catch
and shrink it (see ``tests/sim/test_differential.py``).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.analysis.concurrency import sanitizer
from repro.analysis.concurrency.sanitizer import AliasViolationError
from repro.codes import make_code
from repro.engine.executor import StreamingSchedule, compile_schedule, execute_bits
from repro.sim.scenario import (
    DivergenceError,
    SimScenario,
    generate_scenario,
    run_scenario,
)

__all__ = [
    "DivergenceError",
    "StripeCase",
    "FuzzFailure",
    "run_stripe_case",
    "run_case_dict",
    "fuzz",
    "replay_file",
]

#: Primes the stripe fuzzer samples (the ISSUE's p menu).
STRIPE_PRIMES = (5, 7, 11, 13)


@dataclass
class StripeCase:
    """One randomized stripe pushed through every oracle pair."""

    seed: int
    p: int
    k: int
    element_size: int = 8
    erasures: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": "stripe",
            "seed": self.seed,
            "p": self.p,
            "k": self.k,
            "element_size": self.element_size,
            "erasures": list(self.erasures),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StripeCase":
        if d.get("kind") != "stripe":
            raise ValueError(f"not a stripe record: kind={d.get('kind')!r}")
        return cls(
            seed=int(d["seed"]),
            p=int(d["p"]),
            k=int(d["k"]),
            element_size=int(d["element_size"]),
            erasures=list(d["erasures"]),
        )

    @classmethod
    def generate(cls, seed: int) -> "StripeCase":
        rng = random.Random(seed)
        p = rng.choice(STRIPE_PRIMES)
        k = rng.randint(2, p)
        element_size = rng.choice((8, 16, 32))
        n_ers = rng.randint(0, 2)
        erasures = sorted(rng.sample(range(k + 2), n_ers))
        return cls(seed=seed, p=p, k=k, element_size=element_size, erasures=erasures)


def _diverge(what: str, case: StripeCase, a: np.ndarray, b: np.ndarray) -> None:
    bad = np.argwhere(a != b)
    first = tuple(int(x) for x in bad[0]) if bad.size else ()
    raise DivergenceError(
        f"{what} diverges at cell {first} for {case.to_dict()}",
        context={"oracle": what, "cell": first, "case": case.to_dict()},
    )


def _check_executors(sched, buf_ref: np.ndarray, what: str, case: StripeCase) -> None:
    """All execution strategies must transform identical inputs identically.

    ``buf_ref`` is the *input* stripe; the fused per-group compile is
    taken as the candidate baseline and every other strategy -- the
    levelized batch mode, the streaming op-at-a-time engine, the
    bulk-XOR kernel plan (single-stripe and word-packed wide), and the
    bit-level reference on each of two probe bit-planes -- must match.

    Both compiles run with ``validate=True``, so the lowering is also
    *symbolically* proved equivalent to the source schedule -- a fusion
    bug is caught even on inputs whose values happen to mask it.
    """
    fused = compile_schedule(sched, validate=True).run(buf_ref.copy())
    batched = compile_schedule(sched, batched=True, validate=True).run(buf_ref.copy())
    if not np.array_equal(fused, batched):
        _diverge(f"{what}: fused-vs-levelized executor", case, fused, batched)
    streaming = StreamingSchedule(sched).run(buf_ref.copy())
    if not np.array_equal(fused, streaming):
        _diverge(f"{what}: fused-vs-streaming executor", case, fused, streaming)
    kplan = compile_schedule(sched, kernel=True, validate=True)
    kernel = kplan.run(buf_ref.copy())
    if not np.array_equal(fused, kernel):
        _diverge(f"{what}: fused-vs-kernel executor", case, fused, kernel)
    # Kernel wide path: the same plan bound over a word-packed
    # two-stripe batch (stripe i at words [i*w, (i+1)*w)) must leave
    # the single-stripe result in both halves.
    words = buf_ref.shape[2]
    wide = kplan.run(np.concatenate([buf_ref, buf_ref], axis=2))
    for lo in (0, words):
        if not np.array_equal(fused, wide[:, :, lo:lo + words]):
            _diverge(f"{what}: kernel wide path (stripe at word {lo})",
                     case, fused, wide[:, :, lo:lo + words])
    # Bit-plane probe: a schedule is GF(2)-linear, so running the bit
    # reference on any single bit plane must equal that plane of the
    # word execution.  Plane 0 and the top plane bracket the word.
    for plane in (0, 63):
        bits = ((buf_ref[:, :, 0] >> np.uint64(plane)) & np.uint64(1)).astype(np.uint8)
        execute_bits(sched, bits)
        word_plane = ((fused[:, :, 0] >> np.uint64(plane)) & np.uint64(1)).astype(np.uint8)
        if not np.array_equal(bits, word_plane):
            _diverge(f"{what}: bit-plane {plane} vs word executor", case, bits, word_plane)


def run_stripe_case(case: StripeCase, *, code_factory=make_code) -> None:
    """Run every stripe-level oracle; raises :class:`DivergenceError`."""
    kwargs = {"p": case.p, "element_size": case.element_size}
    opt = code_factory("liberation-optimal", case.k, **kwargs)
    orig = code_factory("liberation-original", case.k, **kwargs)

    rng = np.random.default_rng(case.seed)
    data = rng.integers(0, 2**64, (case.k, opt.rows, opt.element_size // 8),
                        dtype=np.uint64)

    buf_opt = opt.alloc_stripe()
    buf_orig = orig.alloc_stripe()
    buf_opt[: case.k] = data
    buf_orig[: case.k] = data

    # Oracle 1: optimal encode == bit-matrix encode, byte for byte.
    opt.encode(buf_opt)
    orig.encode(buf_orig)
    if not np.array_equal(buf_opt[: opt.n_cols], buf_orig[: orig.n_cols]):
        _diverge("encode: optimal vs bit-matrix", case,
                 buf_opt[: opt.n_cols], buf_orig[: orig.n_cols])

    # Oracle 2: every executor agrees on the encode schedule.
    probe = opt.alloc_stripe()
    probe[: case.k] = data
    _check_executors(opt.encode_schedule(), probe, "encode", case)

    if case.erasures:
        ers = list(case.erasures)
        ref = buf_opt.copy()
        garbage = rng.integers(0, 2**64, buf_opt[0].shape, dtype=np.uint64)

        # Oracle 3: both decode paths reconstruct the reference exactly.
        for code, buf in ((opt, buf_opt), (orig, buf_orig)):
            for c in ers:
                buf[c] = garbage
            code.decode(buf, ers)
            if not np.array_equal(buf[: code.n_cols], ref[: code.n_cols]):
                _diverge(f"decode round-trip ({code.name})", case,
                         buf[: code.n_cols], ref[: code.n_cols])

        # Oracle 4: every executor agrees on the optimal decode schedule.
        probe = ref.copy()
        for c in ers:
            probe[c] = 0
        _check_executors(opt.build_decode_schedule(tuple(ers)), probe,
                         "decode", case)


# -- the fuzz loop ------------------------------------------------------------


@dataclass
class FuzzFailure:
    """What the fuzzer hands back when an oracle pair disagrees."""

    case: dict  # the original failing case record
    shrunk: dict  # the minimised case record (== case if shrinking off)
    error: str  # stringified first divergence
    context: dict  # DivergenceError.context of the original failure
    seed: int  # seed that produced the case
    cases_run: int  # how many cases ran before the hit

    def save(self, path) -> None:
        record = dict(self.shrunk)
        record["original"] = self.case
        record["error"] = self.error
        with open(path, "w") as f:
            json.dump(record, f, indent=2)
            f.write("\n")


def run_case_dict(case: dict, *, code_factory=make_code) -> None:
    """Replay any repro record (stripe or scenario); raises on failure."""
    kind = case.get("kind")
    if kind == "stripe":
        run_stripe_case(StripeCase.from_dict(case), code_factory=code_factory)
    elif kind == "scenario":
        run_scenario(SimScenario.from_dict(case), code_factory=code_factory)
    else:
        raise ValueError(f"unknown repro kind {kind!r}")


def fuzz(
    seed: int = 0,
    *,
    max_cases: int | None = None,
    time_budget: float | None = None,
    code_factory=make_code,
    shrink: bool = True,
    scenarios: bool = True,
    chaos: bool = False,
    objects: bool = False,
    membership: bool = False,
    on_progress=None,
) -> FuzzFailure | None:
    """Drive cases until a divergence, a case budget, or a time budget.

    Case ``i`` derives everything from ``seed + i``; stripe cases and
    cluster scenarios alternate (scenario every 4th case -- they cost
    more).  ``chaos`` generates scenarios with the self-healing
    vocabulary (scrub, heal, two-phase writes with crash injection)
    and their convergence epilogue; ``objects`` routes the data plane
    through the object gateway (puts/gets/updates/deletes with their
    own shadow oracle), composable with ``chaos``.  ``membership``
    makes every *other* scenario slot an elastic churn campaign
    (joins, heartbeat-verdict leaves, drains, epoch bumps over an
    elastic node pool, with the convergence epilogue proving zero
    misplaced stripes and full redundancy).  Returns ``None`` if every
    oracle stayed in agreement, else a :class:`FuzzFailure` whose
    ``shrunk`` record is minimal under the greedy reductions of
    :mod:`repro.sim.shrink`.
    """
    if max_cases is None and time_budget is None:
        max_cases = 100
    deadline = None if time_budget is None else time.monotonic() + time_budget
    i = 0
    while (max_cases is None or i < max_cases) and (
        deadline is None or time.monotonic() < deadline
    ):
        case_seed = seed + i
        if scenarios and i % 4 == 3:
            if membership and (i // 4) % 2 == 1:
                record = generate_scenario(case_seed, elastic=True).to_dict()
            else:
                record = generate_scenario(
                    case_seed, chaos=chaos, objects=objects
                ).to_dict()
        else:
            record = StripeCase.generate(case_seed).to_dict()
        try:
            run_case_dict(record, code_factory=code_factory)
            # Runtime cross-check of the static analyzer: any
            # write-after-handoff the alias sanitizer observed during
            # this case is a finding the dataflow passes missed, and it
            # fails the run with the case attached as the repro.
            sanitizer.assert_clean(f"fuzz case seed={case_seed}")
        except AliasViolationError as exc:
            return FuzzFailure(
                case=record, shrunk=record, error=str(exc),
                context={"kind": "alias-sanitizer"},
                seed=case_seed, cases_run=i + 1,
            )
        except DivergenceError as exc:
            shrunk = record
            if shrink:
                from repro.sim.shrink import shrink_case

                shrunk = shrink_case(record, code_factory=code_factory)
            return FuzzFailure(
                case=record,
                shrunk=shrunk,
                error=str(exc),
                context=getattr(exc, "context", {}),
                seed=case_seed,
                cases_run=i + 1,
            )
        if on_progress is not None:
            on_progress(i + 1, record)
        i += 1
    return None


def replay_file(path, *, code_factory=make_code) -> DivergenceError | None:
    """Re-run a saved repro file.

    Returns the :class:`DivergenceError` if the failure still
    reproduces, ``None`` if the stack now passes the case.
    """
    with open(path) as f:
        record = json.load(f)
    record.pop("original", None)
    record.pop("error", None)
    try:
        run_case_dict(record, code_factory=code_factory)
    except DivergenceError as exc:
        return exc
    return None
