"""Greedy minimisation of failing fuzz cases.

A raw fuzzer hit is rarely the smallest witness: the geometry is
bigger than needed, most scenario ops are irrelevant, and the data
seed is arbitrary.  :func:`shrink_case` applies the classic greedy
loop -- propose a strictly smaller candidate, keep it iff it *still
fails the same way*, repeat to fixpoint -- over moves tailored to the
two case kinds:

* stripe cases: drop erasures, walk ``p`` down the prime menu, walk
  ``k`` toward 2, shrink the element size, zero the data seed;
* scenarios: delta-debug the op list (halves first, then single ops),
  then shrink the same geometry knobs, rewriting ops that the smaller
  geometry invalidates (out-of-range columns are dropped, offsets and
  stripe indices clamped).

"Fails the same way" compares the :class:`DivergenceError`'s oracle
label (from ``context``), so a candidate that merely trips an
unrelated error -- e.g. over-shrinking a scenario until three columns
are lost at once raises ``ClusterDegradedError`` -- is rejected rather
than hijacking the shrink.
"""

from __future__ import annotations

from repro.codes import make_code
from repro.sim.scenario import DivergenceError

__all__ = ["shrink_case", "failure_signature"]

_PRIME_MENU = (5, 7, 11, 13)
_ELEMENT_MENU = (8, 16, 32)


def failure_signature(case: dict, *, code_factory=make_code) -> str | None:
    """Run a case; return its oracle label if it diverges, else None.

    Any non-divergence exception (a structurally invalid candidate)
    also returns ``None`` -- the shrinker must never replace a real
    divergence with a construction error.
    """
    from repro.sim.differential import run_case_dict

    try:
        run_case_dict(case, code_factory=code_factory)
    except DivergenceError as exc:
        return str(exc.context.get("oracle", "divergence"))
    except Exception:
        return None
    return None


# -- candidate moves ----------------------------------------------------------


def _geometry_moves(case: dict):
    """Smaller-geometry rewrites shared by both case kinds."""
    p, k = case["p"], case["k"]
    smaller_primes = [q for q in _PRIME_MENU if q < p]
    if smaller_primes:
        q = smaller_primes[-1]
        yield {**case, "p": q, "k": min(k, q)}
    if k > 2:
        yield {**case, "k": k - 1}
    smaller_elems = [e for e in _ELEMENT_MENU if e < case["element_size"]]
    if smaller_elems:
        yield {**case, "element_size": smaller_elems[-1]}


def _stripe_moves(case: dict):
    ers = case["erasures"]
    for i in range(len(ers)):
        yield {**case, "erasures": ers[:i] + ers[i + 1 :]}
    for cand in _geometry_moves(case):
        yield _fix_stripe(cand)
    if case["seed"] != 0:
        yield {**case, "seed": 0}


def _fix_stripe(case: dict) -> dict:
    """Clamp erasures to the (possibly shrunk) column range."""
    n_cols = case["k"] + 2
    return {**case, "erasures": sorted({min(c, n_cols - 1) for c in case["erasures"]})}


def _scenario_moves(case: dict):
    ops = case["ops"]
    # Delta-debugging: big bites first (drop a half / a quarter)...
    n = len(ops)
    for frac in (2, 4):
        size = max(1, n // frac)
        for start in range(0, n, size):
            if n - size >= 1:
                yield {**case, "ops": ops[:start] + ops[start + size :]}
    # ... then single ops.
    for i in range(n):
        yield {**case, "ops": ops[:i] + ops[i + 1 :]}
    if case["n_stripes"] > 1:
        yield _fix_scenario({**case, "n_stripes": case["n_stripes"] - 1})
    for cand in _geometry_moves(case):
        yield _fix_scenario(cand)


def _fix_scenario(case: dict) -> dict:
    """Rewrite ops the shrunk geometry invalidated."""
    k, p = case["k"], case["p"]
    n_cols = k + 2
    capacity = k * p * case["element_size"] * case["n_stripes"]
    ops = []
    for op in case["ops"]:
        op = dict(op)
        col = op.get("column")
        if col is not None and col >= n_cols:
            continue  # that column no longer exists
        if op["op"] in ("write", "read"):
            op["offset"] = min(int(op["offset"]), capacity - 1)
            op["length"] = max(1, min(int(op["length"]), capacity - op["offset"]))
        if op["op"] in ("latent", "corrupt", "txn_write"):
            op["stripe"] = min(int(op["stripe"]), case["n_stripes"] - 1)
        ops.append(op)
    return {**case, "ops": ops}


def _cost(case: dict) -> tuple:
    """Lexicographic size: fewer ops/erasures, then smaller geometry."""
    return (
        len(case.get("ops", case.get("erasures", []))),
        case["p"],
        case["k"],
        case.get("n_stripes", 0),
        case["element_size"],
    )


def shrink_case(
    case: dict, *, code_factory=make_code, max_attempts: int = 400
) -> dict:
    """Greedily minimise ``case``, preserving its failure signature.

    ``max_attempts`` bounds total candidate runs so shrinking a slow
    scenario can never stall a fuzz session; the best case found so
    far is returned either way.
    """
    target = failure_signature(case, code_factory=code_factory)
    if target is None:
        return case  # not reproducible: nothing safe to shrink against

    moves = _scenario_moves if case.get("kind") == "scenario" else _stripe_moves
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for cand in moves(case):
            attempts += 1
            if attempts >= max_attempts:
                break
            if _cost(cand) >= _cost(case):
                continue
            if failure_signature(cand, code_factory=code_factory) == target:
                case = cand
                improved = True
                break  # restart moves from the smaller case
    return case
