"""Seeded cluster scenarios: generate, run, digest, replay.

A :class:`SimScenario` is a complete fault campaign derived from one
integer seed: a geometry (code, ``k``, ``p``, element size, stripe
count) plus an explicit op list -- writes, reads, node kills, network
fault plans, disk failures, latent sectors, rebuilds.  Because the ops
are explicit data (not re-drawn at run time), a scenario replays
bit-identically and the shrinker can delete ops one by one.

:func:`run_scenario` executes the campaign on a
:class:`~repro.cluster.local.LocalCluster` wired to a
:class:`~repro.sim.clock.VirtualClock` and
:class:`~repro.sim.transport.MemoryTransport` -- zero real sockets,
zero real sleeps -- while mirroring every operation into two oracles:

* a **shadow byte array**, the ground truth for user data (RAID-6 must
  return exactly what was written while at most two columns are lost);
* a single-process :class:`~repro.array.raid6.RAID6Array` running the
  same code, whose healthy read path cross-checks the cluster's
  (possibly degraded, decode-driven) answers byte for byte.

Every read is compared against both on the spot; the first divergent
byte raises :class:`DivergenceError`.  The run's trace (op records,
read digests, final metrics counters, final virtual time) is hashed
into a single digest, so "same seed, same bytes" is checkable across
runs, machines and refactors.

The generator keeps at most two columns impaired at any time -- the
RAID-6 contract -- counting a column impaired from the moment any
fault lands on it until a rebuild replaces it (conservative: a write
may heal a latent sector early, but conservatism only constrains the
generator, never correctness).
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import random
from dataclasses import dataclass, field

import numpy as np

from repro.array.faults import ALWAYS, NetworkFaultPlan
from repro.array.raid6 import RAID6Array
from repro.cluster.client import ClusterError, RetryPolicy
from repro.cluster.health import HealthMonitor
from repro.cluster.local import ElasticLocalCluster, LocalCluster
from repro.cluster.rebuild import RebuildScheduler
from repro.cluster.scrub import ClusterScrubber
from repro.cluster.txn import ClientCrash, TwoPhaseWriter
from repro.codes import make_code
from repro.gateway.objstore import IntegrityError, ObjectGateway, ObjectNotFoundError
from repro.obs.tracing import Tracer, use_tracer
from repro.sim.clock import VirtualClock
from repro.sim.transport import MemoryTransport

__all__ = [
    "DivergenceError",
    "SimScenario",
    "ScenarioResult",
    "generate_scenario",
    "run_scenario",
    "SIM_POLICY",
    "GATEWAY_OPS",
    "ELASTIC_OPS",
]


class DivergenceError(AssertionError):
    """Two oracles disagreed -- the divergence the fuzzer hunts for.

    ``context`` carries enough structure (op index, oracle pair, first
    differing offset) for the shrinker's "still the same failure?"
    predicate and for human triage of a repro file.
    """

    def __init__(self, message: str, *, context: dict | None = None) -> None:
        super().__init__(message)
        self.context = dict(context or {})


#: Retry policy every simulated scenario runs under: tight timeouts are
#: free on a virtual clock, and seeded jitter exercises the backoff path.
SIM_POLICY = RetryPolicy(
    attempts=3, timeout=0.25, backoff=0.02, max_backoff=0.2, jitter=0.5
)

#: Geometry menu the generator draws from (small: shrink targets).
GEOMETRY_PRIMES = (5, 7, 11, 13)
GEOMETRY_ELEMENTS = (8, 16, 32)

#: Op kinds of the self-healing vocabulary.  Their presence in a
#: scenario switches the runner into chaos mode (two-phase writer,
#: scrubber and health monitor attached); plain scenarios never
#: construct them, so pre-chaos seeds keep their historical digests.
CHAOS_OPS = frozenset(
    {"corrupt", "scrub", "txn_write", "recover", "heal", "check_quiescent"}
)

#: Op kinds of the object-traffic vocabulary.  Like :data:`CHAOS_OPS`,
#: their presence switches the runner's data plane: an
#: :class:`~repro.gateway.objstore.ObjectGateway` is attached and every
#: object is mirrored (extent by extent) into the byte oracles, so the
#: raw read checks keep working.  Plain scenarios never construct them,
#: so existing seeds keep their digests.
GATEWAY_OPS = frozenset(
    {"gateway_put", "gateway_get", "gateway_update", "gateway_delete",
     "check_objects"}
)

#: Op kinds of the membership-churn vocabulary.  Their presence switches
#: the runner onto an :class:`~repro.cluster.local.ElasticLocalCluster`
#: (placement-routed array, heartbeat monitor, rebalancer) instead of
#: the fixed ``k + 2`` cluster; nodes are identities, not columns.
#: Plain scenarios never construct them, so existing seeds keep their
#: digests.
ELASTIC_OPS = frozenset(
    {"join", "leave", "drain", "epoch_bump", "rebalance", "check_placement"}
)


@dataclass
class SimScenario:
    """One seeded, replayable cluster campaign."""

    seed: int
    code: str = "liberation-optimal"
    k: int = 3
    p: int = 5
    element_size: int = 8
    n_stripes: int = 2
    #: elastic campaigns only: size of the initial node pool (0 = fixed
    #: ``k + 2`` cluster, the historical form)
    n_nodes: int = 0
    ops: list = field(default_factory=list)

    # -- (de)serialisation --------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": "scenario",
            "seed": self.seed,
            "code": self.code,
            "k": self.k,
            "p": self.p,
            "element_size": self.element_size,
            "n_stripes": self.n_stripes,
            "n_nodes": self.n_nodes,
            "ops": self.ops,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SimScenario":
        if d.get("kind", "scenario") != "scenario":
            raise ValueError(f"not a scenario record: kind={d.get('kind')!r}")
        return cls(
            seed=int(d["seed"]),
            code=d.get("code", "liberation-optimal"),
            k=int(d["k"]),
            p=int(d["p"]),
            element_size=int(d["element_size"]),
            n_stripes=int(d["n_stripes"]),
            n_nodes=int(d.get("n_nodes", 0)),
            ops=list(d["ops"]),
        )

    def save(self, path) -> None:
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2)
            f.write("\n")

    @classmethod
    def load(cls, path) -> "SimScenario":
        with open(path) as f:
            return cls.from_dict(json.load(f))


@dataclass
class ScenarioResult:
    """Outcome of one scenario run."""

    digest: str  # SHA-256 over the whole trace
    trace: list  # one record per op (+ the closing read-back)
    virtual_end: float  # virtual seconds consumed
    counters: dict  # final client-side metrics counters

    def __eq__(self, other) -> bool:  # two runs compare by full trace
        return isinstance(other, ScenarioResult) and self.digest == other.digest


# -- generation ---------------------------------------------------------------


def generate_scenario(
    seed: int, *, chaos: bool = False, objects: bool = False,
    elastic: bool = False,
) -> SimScenario:
    """Derive a whole campaign from one integer seed.

    ``chaos`` widens the op vocabulary with the self-healing verbs --
    silent corruption (always followed by a scrub so reads stay within
    the single-column guarantee), scrub passes, two-phase writes with
    client crash injection, and heal rounds -- and appends a
    convergence epilogue (heal, rebuild, recover, deep scrub,
    ``check_quiescent``) so every chaos campaign must end all-clean.
    The default vocabulary is byte-identical to the pre-chaos
    generator: existing seeds keep their digests.

    ``objects`` swaps the data plane for object traffic: raw
    writes/reads/txn-writes become ``gateway_put`` / ``gateway_get`` /
    ``gateway_update`` / ``gateway_delete`` through the object
    front-end (raw stripe writes would clobber object extents), while
    the fault vocabulary -- and, with ``chaos``, scrub/corrupt/heal and
    the convergence epilogue -- stays, so node failure and scrub/heal
    interleave with object traffic.  The generator tracks live objects
    and free space exactly (the allocator fails only when bytes run
    out), so every generated op is legal by construction; a
    ``check_objects`` op before the closing ``read_all`` proves every
    surviving object readable and byte-correct.

    ``elastic`` switches the campaign to membership churn over an
    elastic node pool: joins, ungraceful leaves (stop + heartbeat
    verdict), graceful drains and spurious epoch bumps interleave with
    byte traffic.  The churn model is conservative by construction --
    an ungraceful leave is immediately followed by a rebalance (so at
    most one node's strips are ever un-redundant), drains and leaves
    are only drawn while the surviving LIVE pool can still host every
    column, and the pool is capped at ``k + 2 + 4`` nodes.  The
    epilogue (rebalance, ``check_placement``, ``read_all``) makes every
    elastic campaign prove convergence: zero misplaced stripes, every
    holder LIVE, every strip CRC-clean on its node -- full redundancy.
    """
    rng = random.Random(seed)
    p = rng.choice(GEOMETRY_PRIMES)
    k = rng.randint(2, min(5, p))
    element_size = rng.choice(GEOMETRY_ELEMENTS)
    n_stripes = rng.randint(2, 4)
    sc = SimScenario(
        seed=seed, k=k, p=p, element_size=element_size, n_stripes=n_stripes
    )
    capacity = k * p * element_size * n_stripes

    if elastic:
        n_cols = k + 2
        sc.n_nodes = n_cols + rng.randint(1, 3)
        next_id = sc.n_nodes
        live = {f"n{i}" for i in range(sc.n_nodes)}

        def espan() -> tuple[int, int]:
            if rng.random() < 0.3:
                return 0, capacity
            offset = rng.randrange(capacity)
            length = min(capacity - offset, rng.randint(1, max(1, capacity // 2)))
            return offset, length

        ops = [{"op": "write", "offset": 0, "length": capacity,
                "seed": rng.getrandbits(31)}]
        for _ in range(rng.randint(4, 10)):
            choices = ["write", "read", "read_all", "epoch_bump", "rebalance"]
            if len(live) < n_cols + 4:
                choices.append("join")
            if len(live) - 1 >= n_cols:
                choices += ["leave", "drain"]
            kind = rng.choice(choices)
            if kind == "write":
                offset, length = espan()
                ops.append({"op": "write", "offset": offset, "length": length,
                            "seed": rng.getrandbits(31)})
            elif kind == "read":
                offset, length = espan()
                ops.append({"op": "read", "offset": offset, "length": length})
            elif kind == "read_all":
                ops.append({"op": "read_all"})
            elif kind == "epoch_bump":
                ops.append({"op": "epoch_bump"})
            elif kind == "rebalance":
                ops.append({"op": "rebalance"})
            elif kind == "join":
                live.add(f"n{next_id}")
                next_id += 1
                ops.append({"op": "join"})
                if rng.random() < 0.5:
                    ops.append({"op": "rebalance"})
            elif kind == "leave":
                node = rng.choice(sorted(live))
                live.discard(node)
                # Redundancy is restored before the next fault lands:
                # the paired rebalance re-places the dead node's strips.
                ops.append({"op": "leave", "node": node})
                ops.append({"op": "rebalance"})
            elif kind == "drain":
                node = rng.choice(sorted(live))
                live.discard(node)
                ops.append({"op": "drain", "node": node})
        ops += [{"op": "rebalance"}, {"op": "check_placement"},
                {"op": "read_all"}]
        sc.ops = ops
        return sc

    impaired: set[int] = set()
    #: why each impaired column is impaired: reachability losses
    #: ("stop", "net") are what a heal round fixes; media losses
    #: ("disk", "latent") need an explicit rebuild.
    impair_kind: dict[int, str] = {}
    n_cols = k + 2

    #: generator-side object directory: name -> size for live objects,
    #: ``used`` the exact allocated byte total (puts are shadow-writes,
    #: so an overwrite transiently needs old + new to fit).
    live: dict[str, int] = {}
    dead: list[str] = []
    used = 0
    next_id = 0

    def gw_put() -> dict | None:
        nonlocal used, next_id
        overwrite = bool(live) and rng.random() < 0.35
        if overwrite:
            name = rng.choice(sorted(live))
        else:
            name = f"obj{next_id}"
            next_id += 1
        budget = capacity - used
        if budget <= 0:
            return None
        size = rng.randint(0, min(budget, max(1, capacity // 2)))
        if overwrite:
            used -= live[name]
        used += size
        live[name] = size
        if name in dead:
            dead.remove(name)
        return {"op": "gateway_put", "name": name, "size": size,
                "seed": rng.getrandbits(31)}

    # Both vocabularies prime the full array first.  This is not just
    # initial data: the write freshens every strip's checksum sidecar,
    # which the corrupt->scrub pairing relies on -- corruption of a
    # never-written strip is *adopted* by the first probe (sidecar
    # semantics), survives its paired scrub, and can then spread
    # through a rebuild into a consistent-but-wrong stripe.
    ops: list = [{"op": "write", "offset": 0, "length": capacity,
                  "seed": rng.getrandbits(31)}]
    if objects:
        for _ in range(rng.randint(2, 3)):
            rec = gw_put()
            if rec is not None:
                ops.append(rec)

    def io_span() -> tuple[int, int]:
        if rng.random() < 0.3:  # full-array (exercises full-stripe path)
            return 0, capacity
        offset = rng.randrange(capacity)
        length = min(capacity - offset, rng.randint(1, max(1, capacity // 2)))
        return offset, length

    for _ in range(rng.randint(3, 10)):
        healthy = [c for c in range(n_cols) if c not in impaired]
        if objects:
            choices = ["gateway_put", "gateway_get", "gateway_update",
                       "gateway_delete", "transient_fault"]
        else:
            choices = ["write", "read", "read_all", "transient_fault"]
        if len(impaired) < 2:
            choices += ["stop_node", "net_fault", "disk_fail", "latent"]
        if impaired:
            choices.append("rebuild")
        if chaos:
            # txn_write targets raw stripes, which would clobber object
            # extents -- the object vocabulary drops it, keeps the rest.
            choices += ["scrub"] if objects else ["txn_write", "scrub"]
            if not impaired:
                choices.append("corrupt")
        kind = rng.choice(choices)

        if kind == "gateway_put":
            rec = gw_put()
            if rec is None:  # full: fall back to a read of a live object
                rec = {"op": "gateway_get", "name": rng.choice(sorted(live))}
            ops.append(rec)
        elif kind == "gateway_get":
            if dead and rng.random() < 0.25:
                # delete-then-get: must answer ObjectNotFoundError
                ops.append({"op": "gateway_get", "name": rng.choice(sorted(dead))})
            elif live:
                ops.append({"op": "gateway_get", "name": rng.choice(sorted(live))})
            else:
                ops.append({"op": "gateway_get", "name": "ghost"})
        elif kind == "gateway_update":
            cands = sorted(n for n, s in live.items() if s >= 1)
            if cands:
                name = rng.choice(cands)
                size = live[name]
                offset = rng.randrange(size)
                length = rng.randint(1, size - offset)
                ops.append({"op": "gateway_update", "name": name,
                            "offset": offset, "length": length,
                            "seed": rng.getrandbits(31)})
            elif live:
                ops.append({"op": "gateway_get", "name": rng.choice(sorted(live))})
        elif kind == "gateway_delete":
            if live:
                name = rng.choice(sorted(live))
                used -= live.pop(name)
                if name not in dead:
                    dead.append(name)
                ops.append({"op": "gateway_delete", "name": name})
        elif kind == "write":
            offset, length = io_span()
            ops.append({"op": "write", "offset": offset, "length": length,
                        "seed": rng.getrandbits(31)})
        elif kind == "read":
            offset, length = io_span()
            ops.append({"op": "read", "offset": offset, "length": length})
        elif kind == "read_all":
            ops.append({"op": "read_all"})
        elif kind == "transient_fault":
            col = rng.choice(healthy)
            plan = NetworkFaultPlan.random(rng, persistent=False)
            ops.append({"op": "fault", "column": col, "plan": plan.to_header()})
        elif kind == "stop_node":
            col = rng.choice(healthy)
            impaired.add(col)
            impair_kind[col] = "stop"
            ops.append({"op": "stop_node", "column": col})
        elif kind == "net_fault":
            col = rng.choice(healthy)
            impaired.add(col)
            impair_kind[col] = "net"
            plan = NetworkFaultPlan.random(rng, persistent=True)
            ops.append({"op": "fault", "column": col, "plan": plan.to_header()})
        elif kind == "disk_fail":
            col = rng.choice(healthy)
            impaired.add(col)
            impair_kind[col] = "disk"
            ops.append({"op": "disk_fail", "column": col})
        elif kind == "latent":
            col = rng.choice(healthy)
            impaired.add(col)
            impair_kind[col] = "latent"
            ops.append({"op": "latent", "column": col,
                        "stripe": rng.randrange(n_stripes)})
        elif kind == "rebuild":
            col = rng.choice(sorted(impaired))
            impaired.discard(col)
            impair_kind.pop(col, None)
            ops.append({"op": "rebuild", "column": col})
        elif kind == "txn_write":
            crash_after = (
                rng.randint(0, 2 * n_cols + 1) if rng.random() < 0.5 else None
            )
            ops.append({"op": "txn_write", "stripe": rng.randrange(n_stripes),
                        "seed": rng.getrandbits(31), "crash_after": crash_after})
        elif kind == "corrupt":
            # Silent corruption breaks the healthy-read oracle until
            # repaired, so the scrub rides along immediately.
            ops.append({"op": "corrupt", "column": rng.choice(healthy),
                        "stripe": rng.randrange(n_stripes),
                        "seed": rng.getrandbits(31)})
            ops.append({"op": "scrub"})
        elif kind == "scrub":
            ops.append({"op": "scrub"})

    if chaos:
        # Convergence epilogue: the self-healing machinery must drive
        # whatever the campaign broke back to all-clean.
        ops.append({"op": "heal"})
        for col in sorted(c for c in impaired if impair_kind[c] in ("disk", "latent")):
            ops.append({"op": "rebuild", "column": col})
        ops.append({"op": "recover"})
        ops.append({"op": "scrub", "deep": True})
        ops.append({"op": "check_quiescent"})
    if objects:
        ops.append({"op": "check_objects"})
    ops.append({"op": "read_all"})
    sc.ops = ops
    return sc


# -- execution ----------------------------------------------------------------


def _payload(seed: int, length: int) -> bytes:
    return np.random.default_rng(seed).bytes(length)


def _sha(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _first_diff(a: bytes, b: bytes) -> int:
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def run_scenario(
    scenario: SimScenario, *, code_factory=make_code,
    tracer: Tracer | None = None,
) -> ScenarioResult:
    """Execute a scenario under virtual time; raises on any divergence.

    ``code_factory`` is the injectable seam the fuzzer's self-tests use
    to plant a known-buggy code and prove the harness catches it.

    When a ``tracer`` is supplied it is rebound to the scenario's
    :class:`~repro.sim.clock.VirtualClock` (its ``now`` is replaced) and
    installed as the active tracer for the run, so RPC, node-dispatch
    and engine schedule spans all land on the same virtual timeline.
    Because every span timestamp comes off the virtual clock, the trace
    digest is a pure function of the seed -- same seed, same spans.
    """

    async def main() -> ScenarioResult:
        clock = VirtualClock()
        transport = MemoryTransport()
        if tracer is not None:
            tracer.now = clock.time  # spans share the op timeline
        kwargs = {"p": scenario.p, "element_size": scenario.element_size}
        cluster_code = code_factory(scenario.code, scenario.k, **kwargs)
        model_code = code_factory(scenario.code, scenario.k, **kwargs)
        elastic = any(op["op"] in ELASTIC_OPS for op in scenario.ops)
        if elastic:
            cluster = ElasticLocalCluster(
                cluster_code, scenario.n_stripes, scenario.n_nodes or None,
                transport=transport, clock=clock, tracer=tracer,
            )
        else:
            cluster = LocalCluster(
                cluster_code, scenario.n_stripes, transport=transport,
                clock=clock, tracer=tracer,
            )
        model = RAID6Array(model_code, scenario.n_stripes)
        trace: list = []

        def check_read(i: int, op: dict, offset: int, got: bytes) -> None:
            want = bytes(shadow[offset : offset + len(got)])
            if got != want:
                at = _first_diff(got, want)
                raise DivergenceError(
                    f"op[{i}] {op['op']}: cluster read diverges from shadow "
                    f"bytes at offset {offset + at}",
                    context={"op_index": i, "oracle": "cluster-vs-shadow",
                             "offset": offset + at, "op": op},
                )
            model_got = model.read(offset, len(got))
            if got != model_got:
                at = _first_diff(got, model_got)
                raise DivergenceError(
                    f"op[{i}] {op['op']}: cluster read diverges from the "
                    f"single-process RAID6Array at offset {offset + at}",
                    context={"op_index": i, "oracle": "cluster-vs-raid6array",
                             "offset": offset + at, "op": op},
                )

        async with cluster:
            arr = cluster.array(
                policy=SIM_POLICY, rng=random.Random(scenario.seed ^ 0x5EED)
            )
            shadow = bytearray(arr.capacity)
            sdb = arr.stripe_data_bytes

            # Object traffic attaches the gateway only when the op list
            # uses it (digest compatibility, like the chaos machinery).
            # Every object write is mirrored extent-by-extent into the
            # byte oracles, so raw read checks keep covering the array.
            gateway = None
            obj_shadow: dict[str, bytes] = {}
            if any(op["op"] in GATEWAY_OPS for op in scenario.ops):
                gateway = ObjectGateway(arr, cache_stripes=scenario.n_stripes)

            def mirror_object(name: str, data: bytes) -> None:
                pos = 0
                for ext in gateway.index[name].extents:
                    off = ext.stripe * sdb + ext.start
                    chunk = data[pos : pos + ext.length]
                    model.write(off, chunk)
                    shadow[off : off + len(chunk)] = chunk
                    pos += ext.length

            async def verify_object(i: int, op: dict, name: str) -> bytes:
                try:
                    got = await gateway.get(name)
                except IntegrityError as exc:
                    raise DivergenceError(
                        f"op[{i}] {op['op']}: object {name!r} readable but "
                        f"corrupt: {exc}",
                        context={"op_index": i, "oracle": "gateway-integrity",
                                 "name": name, "op": op},
                    ) from exc
                want = obj_shadow[name]
                if got != want:
                    at = _first_diff(got, want)
                    raise DivergenceError(
                        f"op[{i}] {op['op']}: object {name!r} diverges from "
                        f"its shadow at byte {at}",
                        context={"op_index": i, "oracle": "gateway-vs-shadow",
                                 "name": name, "offset": at, "op": op},
                    )
                return got

            # The self-healing machinery attaches only when the op list
            # uses it, so plain scenarios replay with their historical
            # digests (a HealthMonitor installs circuit breakers, which
            # change the data path's failure handling).
            # Elastic campaigns run the membership machinery: the
            # heartbeat monitor converts a stopped node into a DEAD
            # verdict, the rebalancer converges routing onto placement.
            emonitor = rebalancer = None
            if elastic:
                emonitor = cluster.monitor(
                    arr, miss_threshold=2, probe_timeout=0.2
                )
                rebalancer = cluster.rebalancer(arr)

            writer = scrubber = monitor = None
            if any(op["op"] in CHAOS_OPS for op in scenario.ops):
                writer = TwoPhaseWriter(arr, client_id=f"sim-{scenario.seed}")
                scrubber = ClusterScrubber(arr, window=2)
                monitor = HealthMonitor(
                    arr, miss_threshold=2, probe_timeout=0.2,
                    spare_provider=cluster.start_replacement,
                    on_rebuilt=cluster.promote_replacement,
                    rebuild_batch=2,
                )

            async def txn_committed(txn: str) -> bool:
                """Whether any participant recorded a commit decision."""
                for client in arr.clients:
                    try:
                        reply, _ = await client.request("txn-status", {"txn": txn})
                    except ClusterError:
                        continue
                    if reply.get("state") == "committed":
                        return True
                return False

            for i, op in enumerate(scenario.ops):
                kind = op["op"]
                record: dict = {"i": i, "op": kind}
                if kind == "write":
                    offset, length = int(op["offset"]), int(op["length"])
                    data = _payload(int(op["seed"]), length)
                    await arr.write(offset, data)
                    model.write(offset, data)
                    shadow[offset : offset + length] = data
                    record["sha"] = _sha(data)
                elif kind == "read":
                    offset, length = int(op["offset"]), int(op["length"])
                    got = await arr.read(offset, length)
                    check_read(i, op, offset, got)
                    record["sha"] = _sha(got)
                elif kind == "read_all":
                    got = await arr.read(0, arr.capacity)
                    check_read(i, op, 0, got)
                    record["sha"] = _sha(got)
                elif kind == "stop_node":
                    await cluster.stop_node(int(op["column"]))
                elif kind == "fault":
                    col = int(op["column"])
                    cluster.nodes[col].faults = NetworkFaultPlan.from_header(
                        op["plan"]
                    )
                elif kind == "disk_fail":
                    cluster.nodes[int(op["column"])].disk.fail()
                elif kind == "latent":
                    cluster.nodes[int(op["column"])].disk.mark_latent_error(
                        int(op["stripe"])
                    )
                elif kind == "rebuild":
                    col = int(op["column"])
                    addr = await cluster.start_replacement(col)
                    sched = RebuildScheduler(arr, batch_stripes=2)
                    rebuilt = await sched.rebuild_column(col, addr)
                    cluster.promote_replacement(col)
                    record["stripes"] = rebuilt
                elif kind == "corrupt":
                    cluster.nodes[int(op["column"])].disk.corrupt(
                        int(op["stripe"]), seed=int(op["seed"])
                    )
                elif kind == "scrub":
                    rep = await scrubber.scrub(deep=bool(op.get("deep")))
                    record["corrected"] = rep.corrected
                    record["uncorrectable"] = rep.uncorrectable
                    record["deferred"] = rep.deferred
                    record["fast"] = rep.fast_path_hits
                elif kind == "txn_write":
                    stripe = int(op["stripe"])
                    sdb = arr.stripe_data_bytes
                    data = _payload(int(op["seed"]), sdb)
                    buf = cluster_code.alloc_stripe()
                    arr._fill_data_columns(buf, data)
                    cluster_code.encode(buf)
                    if op.get("crash_after") is not None:
                        writer.crash.arm(after=int(op["crash_after"]))
                    try:
                        record["skipped"] = await writer.write_stripe(stripe, buf)
                        committed = True
                    except ClientCrash:
                        # The coordinator died mid-protocol; recovery
                        # decides the txn, and the oracles follow it.
                        txn = f"{writer.client_id}-{writer._seq}"
                        recovered = await writer.recover()
                        committed = (
                            txn in recovered["rolled_forward"]
                            or await txn_committed(txn)
                        )
                        record["crashed"] = True
                    record["committed"] = committed
                    if committed:
                        model.write(stripe * sdb, data)
                        shadow[stripe * sdb : (stripe + 1) * sdb] = data
                elif kind == "gateway_put":
                    name = op["name"]
                    data = _payload(int(op["seed"]), int(op["size"]))
                    stat = await gateway.put(name, data)
                    obj_shadow[name] = data
                    mirror_object(name, data)
                    record["sha"] = _sha(data)
                    record["stripes"] = list(stat.stripes)
                elif kind == "gateway_get":
                    name = op["name"]
                    if name in obj_shadow:
                        got = await verify_object(i, op, name)
                        record["sha"] = _sha(got)
                    else:
                        try:
                            await gateway.get(name)
                        except ObjectNotFoundError:
                            record["missing"] = True
                        else:
                            raise DivergenceError(
                                f"op[{i}] gateway_get: read of deleted/"
                                f"missing object {name!r} succeeded",
                                context={"op_index": i,
                                         "oracle": "gateway-directory",
                                         "name": name, "op": op},
                            )
                elif kind == "gateway_update":
                    name, offset = op["name"], int(op["offset"])
                    data = _payload(int(op["seed"]), int(op["length"]))
                    await gateway.update(name, offset, data)
                    blob = bytearray(obj_shadow[name])
                    blob[offset : offset + len(data)] = data
                    obj_shadow[name] = bytes(blob)
                    mirror_object(name, obj_shadow[name])
                    record["sha"] = _sha(obj_shadow[name])
                elif kind == "gateway_delete":
                    await gateway.delete(op["name"])
                    obj_shadow.pop(op["name"])
                elif kind == "check_objects":
                    for name in sorted(obj_shadow):
                        await verify_object(i, op, name)
                    record["objects"] = len(obj_shadow)
                elif kind == "join":
                    record["node"] = await cluster.add_node(live=True)
                elif kind == "leave":
                    node_id = str(op["node"])
                    await cluster.stop_node(node_id)
                    # The heartbeat monitor, not the test, renders the
                    # DEAD verdict -- miss_threshold consecutive probes.
                    for _ in range(emonitor.miss_threshold):
                        await emonitor.probe_once()
                    record["state"] = arr.membership.state_of(node_id).value
                elif kind == "drain":
                    record["moved"] = await rebalancer.drain(str(op["node"]))
                elif kind == "epoch_bump":
                    record["epoch"] = arr.membership.bump()
                elif kind == "rebalance":
                    record["moved"] = await rebalancer.run_until_converged()
                elif kind == "check_placement":
                    # Quiescence for churn: routing has converged onto
                    # placement, every holder is LIVE, and every strip
                    # is durably CRC-clean on its node -- full
                    # redundancy, zero misplaced stripes.
                    mis = rebalancer.misplaced()
                    if mis:
                        raise DivergenceError(
                            f"op[{i}] check_placement: stripes {mis} still "
                            "misplaced after convergence",
                            context={"op_index": i, "oracle": "placement",
                                     "stripes": mis, "op": op},
                        )
                    pool = set(arr.membership.placement_pool())
                    for s in range(arr.n_stripes):
                        holders = arr.holders(s)
                        off_pool = sorted(set(holders) - pool)
                        if off_pool:
                            raise DivergenceError(
                                f"op[{i}] check_placement: stripe {s} routed "
                                f"to non-live nodes {off_pool}",
                                context={"op_index": i, "oracle": "placement",
                                         "stripe": s, "nodes": off_pool,
                                         "op": op},
                            )
                        for node_id in holders:
                            reply, _ = await arr.client_for_node(
                                node_id
                            ).request("scrub-read", {"stripe": s})
                            if not reply.get("match"):
                                raise DivergenceError(
                                    f"op[{i}] check_placement: stripe {s} "
                                    f"strip on {node_id} fails its sidecar",
                                    context={"op_index": i,
                                             "oracle": "placement",
                                             "stripe": s, "node": node_id,
                                             "op": op},
                                )
                    record["epoch"] = arr.membership.epoch
                    record["quiescent"] = True
                elif kind == "recover":
                    recovered = await writer.recover()
                    record["rolled_forward"] = recovered["rolled_forward"]
                    record["rolled_back"] = recovered["rolled_back"]
                elif kind == "heal":
                    for _ in range(monitor.miss_threshold):
                        await monitor.probe_once()
                    record["healed"] = await monitor.heal()
                elif kind == "check_quiescent":
                    unretired = []
                    for col, client in enumerate(arr.clients):
                        try:
                            reply, _ = await client.request("intents")
                        except ClusterError:
                            unretired.append({"column": col, "unreachable": True})
                            continue
                        unretired += [
                            {"column": col, "txn": rec["txn"]}
                            for rec in reply.get("txns", ())
                        ]
                    if unretired:
                        raise DivergenceError(
                            f"op[{i}] check_quiescent: unretired intents "
                            f"{unretired}",
                            context={"op_index": i, "oracle": "quiescence",
                                     "intents": unretired, "op": op},
                        )
                    rep = await scrubber.scrub(deep=True)
                    if not rep.healthy:
                        raise DivergenceError(
                            f"op[{i}] check_quiescent: scrub not clean "
                            f"(uncorrectable={rep.uncorrectable}, "
                            f"deferred={rep.deferred}, "
                            f"detected_only={rep.detected_only})",
                            context={"op_index": i, "oracle": "quiescence",
                                     "op": op},
                        )
                    if arr.dirty_stripes:
                        raise DivergenceError(
                            f"op[{i}] check_quiescent: dirty stripes remain "
                            f"{sorted(arr.dirty_stripes)}",
                            context={"op_index": i, "oracle": "quiescence",
                                     "op": op},
                        )
                    if gateway is not None:
                        # Quiescence for object traffic: every surviving
                        # object must be readable and byte-correct (a
                        # CRC pass on stale bytes would be a silent
                        # readable-but-corrupt state).
                        for name in sorted(obj_shadow):
                            await verify_object(i, op, name)
                        record["objects"] = len(obj_shadow)
                    record["quiescent"] = True
                else:
                    raise ValueError(f"unknown scenario op {kind!r}")
                record["t"] = round(clock.time(), 9)
                trace.append(record)

            counters = arr.metrics.snapshot()["counters"]
        trace.append({"counters": counters})
        digest = _sha(
            json.dumps(trace, sort_keys=True, separators=(",", ":")).encode()
        )
        return ScenarioResult(
            digest=digest,
            trace=trace,
            virtual_end=clock.time(),
            counters=counters,
        )

    scope = use_tracer(tracer) if tracer is not None else contextlib.nullcontext()
    with scope:  # activate so engine schedule spans are recorded too
        return asyncio.run(main())
