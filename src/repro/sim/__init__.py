"""repro.sim -- deterministic simulation and differential fuzzing.

The correctness backstop of the whole stack.  Three layers:

* **Virtual time + in-memory transport**
  (:mod:`repro.sim.clock`, :mod:`repro.sim.transport`): the cluster's
  injectable seams.  A :class:`VirtualClock` advances discrete-event
  style only when the loop quiesces; a :class:`MemoryTransport`
  replaces TCP with cross-wired stream buffers.  Cluster scenarios --
  node kills, timeouts, mid-frame drops, corrupt frames,
  rebuild-under-loss -- run with zero real sockets or sleeps and
  replay bit-identically from a single integer seed.

* **Seeded scenarios** (:mod:`repro.sim.scenario`): a generator that
  derives a whole fault campaign from one seed, runs it against a
  simulated :class:`~repro.cluster.local.LocalCluster`, mirrors every
  operation into shadow models, and digests the trace so two runs of
  the same seed are comparable byte-for-byte.

* **Differential fuzzing + shrinking** (:mod:`repro.sim.differential`,
  :mod:`repro.sim.shrink`): random stripes and erasure patterns pushed
  through multiple oracles -- optimal Liberation vs. the bit-matrix
  baseline, bit executor vs. word executors vs. compiled schedules,
  ClusterArray vs. a single-process model -- failing on the first
  divergent byte, then greedily minimised to a replayable repro file
  (see the ``repro sim`` CLI verbs).

Only the clock and transport are imported eagerly -- they are
dependency-free and the cluster package itself imports them.  The
scenario/fuzzing layers import :mod:`repro.cluster` back, so they load
lazily via module ``__getattr__`` to keep the import graph acyclic.
"""

from repro.sim.clock import Clock, RealClock, VirtualClock
from repro.sim.transport import AsyncioTransport, MemoryTransport, Transport

__all__ = [
    "Clock",
    "RealClock",
    "VirtualClock",
    "Transport",
    "AsyncioTransport",
    "MemoryTransport",
    # lazily resolved:
    "DivergenceError",
    "FuzzFailure",
    "SimScenario",
    "ScenarioResult",
    "StripeCase",
    "generate_scenario",
    "run_scenario",
    "fuzz",
    "replay_file",
    "shrink_case",
]

_LAZY = {
    "SimScenario": "repro.sim.scenario",
    "ScenarioResult": "repro.sim.scenario",
    "generate_scenario": "repro.sim.scenario",
    "run_scenario": "repro.sim.scenario",
    "DivergenceError": "repro.sim.differential",
    "FuzzFailure": "repro.sim.differential",
    "StripeCase": "repro.sim.differential",
    "fuzz": "repro.sim.differential",
    "replay_file": "repro.sim.differential",
    "shrink_case": "repro.sim.shrink",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
