"""Injectable time: the real event loop clock or a deterministic
virtual one.

Everything in :mod:`repro.cluster` that touches time -- service-latency
faults, request timeouts, retry backoff, latency histograms -- goes
through a :class:`Clock`.  The default :class:`RealClock` delegates to
asyncio, so production behaviour is unchanged.  Under simulation a
:class:`VirtualClock` replaces it: ``sleep`` and ``wait_for`` consume
*virtual* seconds that advance only when every task in the loop has
quiesced, so a scenario with seconds of backoff and timeout runs in
microseconds of wall time and -- because nothing ever races the wall
clock -- replays bit-identically from the same seed.

The advancement rule is the standard discrete-event one: while any
virtual sleeper is pending, let the event loop drain all ready work,
then jump time straight to the earliest deadline and wake everything
due.  With the in-memory transport (:mod:`repro.sim.transport`) there
is no real I/O to wait on, so "ready work drained" is observable by
yielding the pump task through the loop a bounded number of times --
each ``asyncio.sleep(0)`` parks the pump behind every currently
runnable callback.
"""

from __future__ import annotations

import asyncio
import contextlib
import heapq
from typing import Awaitable

__all__ = ["Clock", "RealClock", "VirtualClock"]


class Clock:
    """Interface: time(), sleep(), wait_for() -- see the implementations."""

    def time(self) -> float:
        raise NotImplementedError

    async def sleep(self, delay: float) -> None:
        raise NotImplementedError

    async def wait_for(self, awaitable: Awaitable, timeout: float):
        raise NotImplementedError


class RealClock(Clock):
    """The event loop's own clock (production default)."""

    def time(self) -> float:
        return asyncio.get_running_loop().time()

    async def sleep(self, delay: float) -> None:
        await asyncio.sleep(delay)

    async def wait_for(self, awaitable: Awaitable, timeout: float):
        return await asyncio.wait_for(awaitable, timeout)


class VirtualClock(Clock):
    """Deterministic discrete-event time for simulation.

    ``settle_yields`` bounds how many times the advancing task cycles
    through the ready queue before concluding the loop has quiesced;
    each cycle runs *every* currently ready callback, so the default
    comfortably covers the deepest RPC chains in the cluster stack.
    The value only affects how conservatively time advances, never the
    results: all in-simulation work is deterministic either way.
    """

    def __init__(self, start: float = 0.0, *, settle_yields: int = 20) -> None:
        self._now = float(start)
        self._seq = 0
        #: heap of (deadline, seq, future) for pending sleepers
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []
        self._pump: asyncio.Task | None = None
        self.settle_yields = int(settle_yields)

    def time(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        """Number of unfired sleepers (diagnostics)."""
        return sum(1 for *_ , f in self._sleepers if not f.done())

    async def sleep(self, delay: float) -> None:
        if delay <= 0:
            await asyncio.sleep(0)
            return
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        heapq.heappush(self._sleepers, (self._now + float(delay), self._seq, fut))
        self._seq += 1
        if self._pump is None or self._pump.done():
            self._pump = loop.create_task(self._advance_forever())
        await fut

    async def wait_for(self, awaitable: Awaitable, timeout: float):
        """Race ``awaitable`` against a virtual timer.

        Mirrors :func:`asyncio.wait_for`: on timeout the awaitable is
        cancelled and :class:`asyncio.TimeoutError` is raised.
        """
        if timeout is None:
            return await awaitable
        task = asyncio.ensure_future(awaitable)
        timer = asyncio.ensure_future(self.sleep(timeout))
        try:
            await asyncio.wait({task, timer}, return_when=asyncio.FIRST_COMPLETED)
            if task.done():
                return task.result()
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            raise asyncio.TimeoutError(f"virtual wait_for timed out after {timeout}s")
        finally:
            timer.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await timer

    # -- the advancing pump --------------------------------------------------

    def _prune(self) -> None:
        while self._sleepers and self._sleepers[0][2].done():
            heapq.heappop(self._sleepers)

    async def _advance_forever(self) -> None:
        while True:
            # Let every runnable task make progress before touching time.
            for _ in range(self.settle_yields):
                await asyncio.sleep(0)
            self._prune()
            if not self._sleepers:
                return
            deadline = self._sleepers[0][0]
            if deadline > self._now:
                self._now = deadline
            while self._sleepers and self._sleepers[0][0] <= self._now:
                _, _, fut = heapq.heappop(self._sleepers)
                if not fut.done():
                    fut.set_result(None)

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f}, pending={self.pending})"
