"""Injectable byte transport: real asyncio sockets or in-memory pipes.

:class:`~repro.cluster.node.StripNode` and
:class:`~repro.cluster.client.NodeClient` speak to each other through a
:class:`Transport`: ``serve()`` binds a listener and ``connect()``
yields a ``(StreamReader, writer)`` pair.  :class:`AsyncioTransport`
is the production default and delegates to ``asyncio.start_server`` /
``asyncio.open_connection`` unchanged.

:class:`MemoryTransport` replaces the network with deterministic
in-process pipes: a listener is an entry in a dict, a connection is a
pair of :class:`asyncio.StreamReader` buffers cross-wired through
:class:`MemoryStreamWriter`.  Connecting to an address nobody serves
raises :class:`ConnectionRefusedError` and closing a writer feeds EOF
to the peer -- exactly the failure surface the cluster's retry and
degraded-read machinery is written against, minus the kernel's timing
noise.  Combined with :class:`~repro.sim.clock.VirtualClock` this makes
whole cluster scenarios replay bit-identically.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = [
    "Transport",
    "AsyncioTransport",
    "MemoryTransport",
    "MemoryStreamWriter",
]

#: Signature of a connection handler (what ``asyncio.start_server`` takes).
ConnectionHandler = Callable[[asyncio.StreamReader, "object"], Awaitable[None]]


class Transport:
    """Interface shared by the real and in-memory transports."""

    async def serve(self, handler: ConnectionHandler, host: str, port: int):
        """Bind a listener; returns an object with ``address`` /
        ``close()`` / ``wait_closed()``."""
        raise NotImplementedError

    async def connect(self, address: tuple[str, int]):
        """Open a client connection; returns ``(reader, writer)``."""
        raise NotImplementedError


# -- production: real sockets ------------------------------------------------


class _AsyncioListener:
    """Adapter giving ``asyncio.AbstractServer`` the seam's listener API."""

    def __init__(self, server: asyncio.AbstractServer) -> None:
        self._server = server

    @property
    def address(self) -> tuple[str, int]:
        return self._server.sockets[0].getsockname()[:2]

    def close(self) -> None:
        self._server.close()

    async def wait_closed(self) -> None:
        await self._server.wait_closed()


class AsyncioTransport(Transport):
    """Real TCP via asyncio (the default everywhere)."""

    async def serve(self, handler: ConnectionHandler, host: str, port: int):
        return _AsyncioListener(await asyncio.start_server(handler, host, port))

    async def connect(self, address: tuple[str, int]):
        return await asyncio.open_connection(*address)


# -- simulation: in-memory pipes ---------------------------------------------


class MemoryStreamWriter:
    """Writer half of an in-memory pipe.

    Implements the subset of :class:`asyncio.StreamWriter` the cluster
    uses (``write``/``drain``/``close``/``wait_closed``/``is_closing``).
    Bytes feed straight into the peer's :class:`asyncio.StreamReader`;
    ``close()`` feeds EOF, so a peer blocked in ``readexactly`` sees
    :class:`asyncio.IncompleteReadError` just as it would on a dropped
    TCP connection.
    """

    def __init__(self, peer_reader: asyncio.StreamReader) -> None:
        self._peer = peer_reader
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ConnectionResetError("memory pipe is closed")
        if data:
            self._peer.feed_data(bytes(data))

    async def drain(self) -> None:
        if self._closed:
            raise ConnectionResetError("memory pipe is closed")
        # Yield once, like a real drain, so writers never starve readers.
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None


class _MemoryListener:
    def __init__(self, transport: "MemoryTransport", key: tuple[str, int]) -> None:
        self._transport = transport
        self._key = key

    @property
    def address(self) -> tuple[str, int]:
        return self._key

    def close(self) -> None:
        self._transport._listeners.pop(self._key, None)

    async def wait_closed(self) -> None:
        return None


class MemoryTransport(Transport):
    """A private in-process 'network' of handler registrations.

    Each instance is an isolated namespace: nodes and clients must share
    the same ``MemoryTransport`` to see each other, which is what keeps
    concurrently running simulations from cross-talking.
    """

    #: Where ephemeral 'ports' start; real OSes use the same range.
    EPHEMERAL_BASE = 49152

    def __init__(self) -> None:
        self._listeners: dict[tuple[str, int], ConnectionHandler] = {}
        self._next_port = self.EPHEMERAL_BASE
        self._conn_tasks: set[asyncio.Task] = set()

    async def serve(self, handler: ConnectionHandler, host: str, port: int):
        if port == 0:
            port = self._next_port
            self._next_port += 1
        key = (str(host), int(port))
        if key in self._listeners:
            raise OSError(f"memory transport: address {key} already in use")
        self._listeners[key] = handler
        return _MemoryListener(self, key)

    async def connect(self, address: tuple[str, int]):
        key = (str(address[0]), int(address[1]))
        handler = self._listeners.get(key)
        if handler is None:
            raise ConnectionRefusedError(
                f"memory transport: nothing listening on {key}"
            )
        client_reader = asyncio.StreamReader()
        server_reader = asyncio.StreamReader()
        client_writer = MemoryStreamWriter(server_reader)
        server_writer = MemoryStreamWriter(client_reader)
        task = asyncio.get_running_loop().create_task(
            handler(server_reader, server_writer)
        )
        # Keep a strong reference so handlers are never GC-cancelled.
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        return client_reader, client_writer
