"""Batch and multi-threaded stripe coding.

Real arrays encode/decode *streams* of stripes, not one; this module
provides that layer:

* :func:`alloc_batch` / :class:`BatchCoder` -- process ``n`` stripes as
  one ``(n, cols, rows, words)`` buffer;
* the **kernel wide path**: when the code executes via levelized
  bulk-XOR kernels (:mod:`repro.engine.kernels`), a whole batch runs as
  *one* bound slice program over the zero-copy transposed view
  ``batch.transpose(1, 2, 0, 3)`` -- every bulk-XOR call then covers
  all ``n`` stripes at once, amortising the per-call NumPy dispatch
  floor that dominates single-stripe runs (this is where the data
  plane's >5x over streaming execution comes from);
* thread-pool parallelism across stripes: NumPy's XOR kernels release
  the GIL on the element buffers, so threads scale on multi-core
  machines without any data copying (each worker owns a contiguous
  chunk of the batch -- the "parallelise the outer loop over
  independent work items" idiom).

The coding plans themselves are compiled once and shared read-only
between threads, so throughput per stripe is identical to the
single-stripe path; only the outer loop parallelises.  Results are
bit-identical across every (path, workers) combination -- the
differential tests pin that.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence

import numpy as np

from repro.codes.base import RAID6Code, XorScheduleCode
from repro.utils.validation import check_erasures
from repro.utils.words import WORD_DTYPE, element_words

__all__ = ["alloc_batch", "alloc_word_batch", "iter_batches", "BatchCoder"]


def iter_batches(n: int, batch_size: int):
    """Yield ``(start, stop)`` bounds covering ``range(n)`` in chunks.

    The outer loop of every bulk coding consumer (the cluster's rebuild
    scheduler streams stripes through :class:`BatchCoder` in exactly
    these windows, bounding peak memory to one batch).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for start in range(0, n, batch_size):
        yield start, min(start + batch_size, n)


def alloc_batch(code: RAID6Code, n_stripes: int) -> np.ndarray:
    """A zeroed ``(n_stripes, total_cols, rows, words)`` batch buffer."""
    if n_stripes <= 0:
        raise ValueError(f"n_stripes must be positive, got {n_stripes}")
    return np.zeros(
        (n_stripes, code.total_cols, code.rows, element_words(code.element_size)),
        dtype=WORD_DTYPE,
    )


def alloc_word_batch(code: RAID6Code, n_stripes: int) -> np.ndarray:
    """A zeroed word-packed batch ``(total_cols, rows, n_stripes*words)``.

    The kernel data plane's native layout: stripe ``i`` occupies words
    ``[i*words, (i+1)*words)`` of every cell, so a
    :class:`~repro.engine.kernels.KernelPlan` compiled for one stripe
    runs the whole batch in one bound program over a fully contiguous
    buffer (no transposed view needed).  Use
    ``buf[..., i*words:(i+1)*words]`` to address stripe ``i``.
    """
    if n_stripes <= 0:
        raise ValueError(f"n_stripes must be positive, got {n_stripes}")
    return np.zeros(
        (code.total_cols, code.rows, n_stripes * element_words(code.element_size)),
        dtype=WORD_DTYPE,
    )


class BatchCoder:
    """Encode/decode many stripes, optionally across threads.

    ``workers = 1`` (default) runs serially; ``workers = n`` splits the
    batch into ``n`` contiguous chunks processed concurrently.  Results
    are bit-identical regardless of ``workers`` (asserted by the test
    suite), because stripes are independent.
    """

    def __init__(self, code: RAID6Code, *, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.code = code
        self.workers = int(workers)
        #: transposed-view cache for the kernel wide path, keyed by
        #: (batch identity, chunk bounds).  Returning the *same* view
        #: object per batch lets the plan's bound-program cache hit, so
        #: steady-state batch coding rebinds nothing.
        self._views: dict[tuple[int, int, int], tuple[np.ndarray, np.ndarray]] = {}

    # -- internals ---------------------------------------------------------

    def _check_batch(self, batch: np.ndarray) -> None:
        code = self.code
        expected = (code.total_cols, code.rows, element_words(code.element_size))
        if batch.ndim != 4 or batch.shape[1:] != expected:
            raise ValueError(
                f"batch shape {batch.shape} does not match (n, {expected})"
            )

    def _wide_plan(self, erasures: tuple[int, ...] | None):
        """The code's kernel plan when the wide path applies, else None.

        The wide path requires kernel execution: only
        :class:`~repro.engine.kernels.KernelPlan` accepts the 4-D
        transposed batch view.  Fused/streaming codes fall back to the
        per-stripe loop.
        """
        code = self.code
        if not isinstance(code, XorScheduleCode) or code.execution != "kernel":
            return None
        if erasures is None:
            if code._encode_plan is None:
                code._encode_plan = code._compile(code.encode_schedule())
            return code._encode_plan
        plan = code._decode_plans.get(erasures)
        if plan is None:
            # Recompiled per call for codes that disable the plan cache
            # (the Jerasure-like baseline does its matrix work per call
            # by design -- the wide path must not hide that cost).
            plan = code._compile(code.build_decode_schedule(erasures))
            if code.cache_decode_plans:
                code._decode_plans[erasures] = plan
        return plan

    def _wide_view(self, batch: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Zero-copy kernel view of ``batch[lo:hi]``: (cols, rows, n, words)."""
        key = (id(batch), lo, hi)
        entry = self._views.get(key)
        if entry is not None and entry[0] is batch:
            return entry[1]
        view = batch[lo:hi].transpose(1, 2, 0, 3)
        if len(self._views) >= 4:
            self._views.pop(next(iter(self._views)))
        self._views[key] = (batch, view)
        return view

    def _run(self, batch: np.ndarray, fn, plan=None) -> np.ndarray:
        n = batch.shape[0]
        if plan is not None and n > 0:
            if self.workers == 1 or n == 1:
                plan.run(self._wide_view(batch, 0, n))
                return batch
            bounds = np.linspace(0, n, self.workers + 1, dtype=int)
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(plan.run, self._wide_view(batch, int(a), int(b)))
                    for a, b in zip(bounds[:-1], bounds[1:])
                    if a < b
                ]
                for f in futures:
                    f.result()  # propagate exceptions
            return batch
        if self.workers == 1 or n == 1:
            for i in range(n):
                fn(batch[i])
            return batch
        bounds = np.linspace(0, n, self.workers + 1, dtype=int)

        def work(chunk):
            for i in range(*chunk):
                fn(batch[i])

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = [
                pool.submit(work, (int(a), int(b)))
                for a, b in zip(bounds[:-1], bounds[1:])
                if a < b
            ]
            for f in futures:
                f.result()  # propagate exceptions
        return batch

    def _warm_plans(self, erasures=None) -> None:
        """Compile plans before threads share them."""
        code = self.code
        if isinstance(code, XorScheduleCode):
            if erasures is None:
                code.encode_schedule()
                if code._encode_plan is None:
                    code._encode_plan = code._compile(code.encode_schedule())
            elif code.cache_decode_plans:
                scratch = code.alloc_stripe()
                code.decode(scratch, list(erasures))

    # -- public API -------------------------------------------------------------

    def encode(self, batch: np.ndarray) -> np.ndarray:
        """Fill parity columns of every stripe in the batch, in place."""
        self._check_batch(batch)
        self._warm_plans()
        return self._run(batch, self.code.encode, plan=self._wide_plan(None))

    def decode(self, batch: np.ndarray, erasures: Sequence[int]) -> np.ndarray:
        """Recover the same erasure pattern in every stripe, in place.

        (Bulk reconstruction after a disk failure is exactly this
        shape: one pattern, many stripes.)
        """
        self._check_batch(batch)
        ers = check_erasures(erasures, self.code.n_cols)
        if not ers:
            return batch
        self._warm_plans(ers)
        return self._run(
            batch,
            lambda stripe: self.code.decode(stripe, ers),
            plan=self._wide_plan(ers),
        )
