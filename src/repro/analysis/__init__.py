"""Analysis utilities around the coding core.

* :mod:`repro.analysis.reliability` -- Markov MTTDL models quantifying
  the paper's §I motivation: why RAID-6 (any-two-failures plus an
  unrecoverable read error during recovery) displaced RAID-5 as disks
  grew and per-bit error rates stayed flat.
* :mod:`repro.analysis.visualize` -- text renderers for codeword
  geometry (the paper's Fig. 2/3 constraint grids) and schedule
  statistics (depth/width of the XOR programs).
"""

from repro.analysis.reliability import (
    DiskModel,
    mttdl_raid5,
    mttdl_raid6,
    rebuild_read_failure_probability,
)
from repro.analysis.visualize import (
    constraint_grid,
    erasure_grid,
    schedule_stats,
    ScheduleStats,
)

__all__ = [
    "DiskModel",
    "mttdl_raid5",
    "mttdl_raid6",
    "rebuild_read_failure_probability",
    "constraint_grid",
    "erasure_grid",
    "schedule_stats",
    "ScheduleStats",
]
