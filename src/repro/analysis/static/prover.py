"""Symbolic proofs of schedule correctness.

A proof here is exact, not statistical: the abstract interpretation of
:mod:`repro.analysis.static.symbolic` computes, for every cell, the
precise set of initial values whose GF(2) sum the schedule leaves
there.  Comparing that against the family's parity specification
(:mod:`repro.analysis.static.spec`) establishes correctness *for all
2^(k*rows) inputs at once* -- a property the differential fuzzer can
only sample.

Three obligations are discharged per schedule:

1. **structure** -- no read of erased/scratch garbage before it is
   written (:func:`repro.analysis.static.structural.check_structure`);
2. **footprint** -- the schedule writes only cells it is allowed to
   (parity + scratch for encode; erased + scratch for decode) and every
   cell it must (all cells of each erased column);
3. **values** -- the final symbolic expression of every obligated cell
   equals its specification exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.analysis.static.spec import parity_spec
from repro.analysis.static.structural import check_structure
from repro.analysis.static.symbolic import (
    Cell,
    Expr,
    data_atom,
    format_expr,
    pristine_state,
    symbolic_execute,
)
from repro.codes.base import XorScheduleCode
from repro.engine.ops import Schedule

__all__ = ["Proof", "erasure_patterns", "prove_encode", "prove_decode", "prove_code"]


@dataclass
class Proof:
    """Outcome of symbolically checking one schedule against its spec."""

    family: str
    kind: str  # "encode" or "decode"
    k: int
    rows: int
    erasures: tuple[int, ...]
    n_ops: int
    n_xors: int
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "family": self.family,
            "kind": self.kind,
            "k": self.k,
            "rows": self.rows,
            "erasures": list(self.erasures),
            "n_ops": self.n_ops,
            "n_xors": self.n_xors,
            "ok": self.ok,
            "failures": list(self.failures),
        }

    def __str__(self) -> str:
        what = self.kind if self.kind == "encode" else f"decode{self.erasures}"
        verdict = "proved" if self.ok else f"FAILED ({len(self.failures)})"
        return f"{self.family} k={self.k} {what}: {verdict}"


def erasure_patterns(n_cols: int, max_erasures: int = 2) -> list[tuple[int, ...]]:
    """Every erasure pattern a RAID-6 code must survive: all single and
    (by default) double column losses over the ``k+2`` logical columns."""
    patterns: list[tuple[int, ...]] = []
    for n in range(1, max_erasures + 1):
        patterns.extend(combinations(range(n_cols), n))
    return patterns


def _mismatch(cell: Cell, got: Expr, want: Expr) -> str:
    extra = got - want
    missing = want - got
    parts = [f"cell (c{cell[0]},r{cell[1]}) holds {format_expr(got)}"]
    if missing:
        parts.append(f"missing {format_expr(missing)}")
    if extra:
        parts.append(f"spurious {format_expr(extra)}")
    return "; ".join(parts)


def _scratch_cols(code: XorScheduleCode) -> tuple[int, ...]:
    return tuple(range(code.n_cols, code.total_cols))


def prove_encode(code: XorScheduleCode, schedule: Schedule | None = None) -> Proof:
    """Prove an encode schedule computes exactly the parity spec.

    Initial state: data cells meaningful, parity and scratch cells
    garbage (an encoder may not rely on stale parity).  Obligations:
    structure, writes confined to parity+scratch, and every parity cell
    ending at its specification.
    """
    sched = code.build_encode_schedule() if schedule is None else schedule
    spec = parity_spec(code)
    scratch = _scratch_cols(code)
    proof = Proof(
        family=code.name,
        kind="encode",
        k=code.k,
        rows=code.rows,
        erasures=(),
        n_ops=len(sched),
        n_xors=sched.n_xors,
    )

    proof.failures.extend(
        check_structure(
            sched,
            unreadable_cols=(code.p_col, code.q_col),
            garbage_cols=scratch,
            required_dsts=spec.keys(),
            collect=True,
        )
    )

    for i, op in enumerate(sched):
        if op.dst_col < code.k:
            proof.failures.append(
                f"op {i} ({op}) writes data cell {op.dst} during encode"
            )

    garbage = [
        (col, row)
        for col in (code.p_col, code.q_col, *scratch)
        for row in range(code.rows)
    ]
    final = symbolic_execute(sched, pristine_state(
        sched.cols, sched.rows, garbage_cells=garbage
    ))
    for cell, want in sorted(spec.items()):
        got = final[cell]
        if got != want:
            proof.failures.append("encode " + _mismatch(cell, got, want))
    return proof


def prove_decode(
    code: XorScheduleCode,
    erasures: tuple[int, ...],
    schedule: Schedule | None = None,
) -> Proof:
    """Prove a decode schedule rebuilds every erased cell exactly.

    Initial state: surviving data cells hold their own atom, surviving
    parity cells hold their *specification* expression (parity on disk
    is trusted to be consistent -- that is the decoding contract), and
    erased + scratch cells hold garbage.  Obligations: structure, writes
    confined to erased+scratch columns, every erased cell written, and
    each erased cell ending at its pristine value -- the data atom for a
    data cell, the spec expression for a parity cell.
    """
    ers = tuple(sorted(set(int(e) for e in erasures)))
    sched = code.build_decode_schedule(ers) if schedule is None else schedule
    spec = parity_spec(code)
    scratch = _scratch_cols(code)
    erased = set(ers)
    proof = Proof(
        family=code.name,
        kind="decode",
        k=code.k,
        rows=code.rows,
        erasures=ers,
        n_ops=len(sched),
        n_xors=sched.n_xors,
    )

    required = [(col, row) for col in ers for row in range(code.rows)]
    proof.failures.extend(
        check_structure(
            sched,
            unreadable_cols=ers,
            garbage_cols=scratch,
            required_dsts=required,
            collect=True,
        )
    )

    writable = erased | set(scratch)
    for i, op in enumerate(sched):
        if op.dst_col not in writable:
            proof.failures.append(
                f"op {i} ({op}) writes surviving column {op.dst_col} during decode"
            )

    garbage = [(col, row) for col in (*ers, *scratch) for row in range(code.rows)]
    overrides = {
        cell: expr for cell, expr in spec.items() if cell[0] not in erased
    }
    final = symbolic_execute(sched, pristine_state(
        sched.cols, sched.rows, garbage_cells=garbage, overrides=overrides
    ))
    for col in ers:
        for row in range(code.rows):
            cell = (col, row)
            want = spec[cell] if col >= code.k else frozenset((data_atom(col, row),))
            got = final[cell]
            if got != want:
                proof.failures.append(f"decode{ers} " + _mismatch(cell, got, want))
    return proof


def prove_code(
    code: XorScheduleCode,
    patterns: list[tuple[int, ...]] | None = None,
) -> list[Proof]:
    """Prove the encode schedule and the decode schedule of every
    erasure pattern (all singles and doubles by default)."""
    if patterns is None:
        patterns = erasure_patterns(code.n_cols)
    proofs = [prove_encode(code)]
    proofs.extend(prove_decode(code, pat) for pat in patterns)
    return proofs
