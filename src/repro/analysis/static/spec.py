"""Parity-bit specifications: what each parity cell *must* equal.

For every supported code family this module answers, from the family's
*defining equations or generator matrix* -- never from its schedule
builders -- the question: "which data bits does parity cell ``(col,
row)`` XOR together?".  The symbolic prover compares a schedule's final
state against these sets, so keeping the two derivations independent is
what makes the comparison a proof rather than a tautology.

* **Liberation** -- equations (1)-(2) of the paper via
  :func:`repro.bitmatrix.builder.liberation_parity_cells` (the repo's
  single source of truth for the code's definition).
* **EVENODD** (Blaum et al. 1995) -- row parity, and diagonal parity
  XOR the adjuster ``S`` (the parity of the missing diagonal ``p-1``).
* **RDP** (Corbett et al. FAST'04) -- row parity, and diagonal parity
  over data *and P* with the P member substituted by its own row
  equation (so the spec, like ours, is expressed over data bits only).
* **Bit-matrix codes** (Blaum-Roth, Cauchy RS) -- rows of the
  ``2w x kw`` generator the code was constructed from.

To add a family: return, for every parity cell, the ``frozenset`` of
:func:`~repro.analysis.static.symbolic.data_atom` terms its defining
equation XORs (see ``docs/static-analysis.md``).
"""

from __future__ import annotations

from repro.analysis.static.symbolic import Cell, Expr, data_atom
from repro.codes.base import RAID6Code, XorScheduleCode
from repro.codes.evenodd import EvenOddCode
from repro.codes.liberation import LiberationCode
from repro.codes.rdp import RDPCode
from repro.utils.modular import Mod

__all__ = ["parity_spec", "spec_xor_lower_bound"]


def _liberation_spec(code: LiberationCode) -> dict[Cell, Expr]:
    from repro.bitmatrix.builder import liberation_parity_cells

    p_rows, q_rows = liberation_parity_cells(code.p, code.k)
    spec: dict[Cell, Expr] = {}
    for i, cells in enumerate(p_rows):
        expr: Expr = frozenset()
        for (row, col) in cells:
            expr = expr ^ frozenset((data_atom(col, row),))
        spec[(code.p_col, i)] = expr
    for i, cells in enumerate(q_rows):
        expr = frozenset()
        for (row, col) in cells:
            expr = expr ^ frozenset((data_atom(col, row),))
        spec[(code.q_col, i)] = expr
    return spec


def _evenodd_spec(code: EvenOddCode) -> dict[Cell, Expr]:
    p, k, mod = code.p, code.k, Mod(code.p)
    spec: dict[Cell, Expr] = {}
    for i in range(p - 1):
        spec[(code.p_col, i)] = frozenset(data_atom(j, i) for j in range(k))
    # Adjuster: the parity of the (never stored) diagonal p-1.
    s = frozenset(
        data_atom(j, mod(p - 1 - j)) for j in range(k) if mod(p - 1 - j) != p - 1
    )
    for d in range(p - 1):
        diag = frozenset(
            data_atom(j, mod(d - j)) for j in range(k) if mod(d - j) != p - 1
        )
        spec[(code.q_col, d)] = diag ^ s
    return spec


def _rdp_spec(code: RDPCode) -> dict[Cell, Expr]:
    p, k, mod = code.p, code.k, Mod(code.p)
    spec: dict[Cell, Expr] = {}
    for i in range(p - 1):
        spec[(code.p_col, i)] = frozenset(data_atom(j, i) for j in range(k))
    for d in range(p - 1):
        diag = frozenset(
            data_atom(j, mod(d - j)) for j in range(k) if mod(d - j) != p - 1
        )
        # The P member of diagonal d sits at row <d+1> (P's logical
        # position is p-1); substitute its row equation.
        i_p = mod(d + 1)
        if i_p != p - 1:
            diag = diag ^ frozenset(data_atom(j, i_p) for j in range(k))
        spec[(code.q_col, d)] = diag
    return spec


def _generator_spec(code: XorScheduleCode) -> dict[Cell, Expr]:
    """Spec from a ``2w x kw`` generator bit-matrix (``code.generator``)."""
    import numpy as np

    gen = np.asarray(code.generator, dtype=np.uint8)
    w, k = code.rows, code.k
    if gen.shape != (2 * w, k * w):
        raise ValueError(
            f"{code.name}: generator shape {gen.shape} != (2*{w}, {k}*{w})"
        )
    spec: dict[Cell, Expr] = {}
    for out in range(2 * w):
        cell = (code.p_col + out // w, out % w)
        spec[cell] = frozenset(
            data_atom(int(c) // w, int(c) % w) for c in np.nonzero(gen[out])[0]
        )
    return spec


def parity_spec(code: RAID6Code) -> dict[Cell, Expr]:
    """Map every parity cell of ``code`` to its defining data-bit set.

    Dispatches on the code family; any XOR-schedule code carrying a
    ``generator`` bit-matrix is supported generically.
    """
    if isinstance(code, LiberationCode):
        return _liberation_spec(code)
    if isinstance(code, EvenOddCode):
        return _evenodd_spec(code)
    if isinstance(code, RDPCode):
        return _rdp_spec(code)
    if isinstance(code, XorScheduleCode) and hasattr(code, "generator"):
        return _generator_spec(code)
    raise TypeError(
        f"no parity specification for {type(code).__name__} ({code.name}); "
        "see docs/static-analysis.md for how to add one"
    )


def spec_xor_lower_bound(code: RAID6Code) -> int:
    """The paper's lower bound on *encoding* XORs: ``k-1`` per parity bit.

    Each of the ``2 * rows`` parity bits is the XOR of at least ``k``
    terms (MDS over ``k`` data columns), i.e. at least ``k-1`` XOR
    operations; common subexpressions can at best reach the bound, not
    beat it (paper Table I / §III-B).
    """
    return 2 * code.rows * (code.k - 1)
