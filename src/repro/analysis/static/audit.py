"""XOR-optimality auditor and the machine-readable analysis report.

This is the batch driver behind ``repro analyze`` and the CI gate: for
every requested ``(family, p, k)`` geometry it

1. symbolically **proves** the encode schedule and the decode schedule
   of every single/double erasure pattern correct
   (:mod:`repro.analysis.static.prover`);
2. **audits** XOR counts against the paper's lower bound of ``k-1``
   XORs per parity bit (:func:`repro.analysis.static.spec.spec_xor_lower_bound`),
   recording whether the encode schedule *meets* the bound -- the
   paper's headline claim for Liberation's optimal algorithms;
3. runs the data-flow **lints** (:mod:`repro.analysis.static.lints`)
   over every schedule.

The report is a plain dict tree (JSON-serialisable); :class:`AnalysisReport`
wraps it with gate logic: any proof failure, structural violation or
lint is fatal, and so is ``liberation-optimal`` missing the bound,
since that would mean the reproduction no longer reproduces the paper.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.static.lints import lint_schedule
from repro.analysis.static.prover import Proof, erasure_patterns, prove_decode, prove_encode
from repro.analysis.static.spec import spec_xor_lower_bound
from repro.codes.base import XorScheduleCode

__all__ = [
    "DEFAULT_PRIMES",
    "AnalysisReport",
    "analyze_family",
    "analyze_geometry",
    "default_families",
    "run_analysis",
]

#: The primes the paper evaluates (and the CI gate proves over).
DEFAULT_PRIMES: tuple[int, ...] = (5, 7, 11, 13)

#: Families whose encode schedules are *claimed* optimal; the gate
#: fails if any of their geometries misses the k-1 bound.
OPTIMAL_FAMILIES: frozenset[str] = frozenset({"liberation-optimal"})


def default_families() -> tuple[str, ...]:
    """The schedule-based families the auditor covers by default."""
    return ("liberation-optimal", "liberation-original", "evenodd", "rdp", "blaum-roth")


def family_ks(family: str, p: int) -> range:
    """Valid ``k`` range for a family at prime ``p``."""
    if family in ("rdp", "blaum-roth"):
        return range(2, p)  # k <= p-1
    return range(2, p + 1)  # k <= p


def make_family_code(family: str, k: int, p: int) -> XorScheduleCode:
    from repro.codes.registry import make_code

    try:
        code = make_code(family, k, p=p)
    except TypeError:
        # Families without a prime parameter (e.g. cauchy-rs, whose
        # geometry is w-based) -- and non-schedule codes, which the
        # isinstance check below rejects with a better message.
        code = make_code(family, k)
    if not isinstance(code, XorScheduleCode):
        raise TypeError(f"{family} is not schedule-based; cannot analyze statically")
    return code


def _audit_schedule(code: XorScheduleCode, proof: Proof, sched) -> dict:
    outputs: set[tuple[int, int]]
    if proof.kind == "encode":
        outputs = {
            (col, row)
            for col in (code.p_col, code.q_col)
            for row in range(code.rows)
        }
    else:
        outputs = {(col, row) for col in proof.erasures for row in range(code.rows)}
    lints = lint_schedule(sched, outputs=outputs)
    return {
        "proof": proof.to_dict(),
        "lints": [str(li) for li in lints],
    }


def analyze_geometry(
    family: str,
    p: int,
    k: int,
    *,
    patterns: Sequence[tuple[int, ...]] | None = None,
) -> dict:
    """Prove, audit and lint every schedule of one ``(family, p, k)``."""
    code = make_family_code(family, k, p)
    pats = list(patterns) if patterns is not None else erasure_patterns(code.n_cols)

    enc_sched = code.build_encode_schedule()
    enc_proof = prove_encode(code, enc_sched)
    enc = _audit_schedule(code, enc_proof, enc_sched)
    bound = spec_xor_lower_bound(code)
    enc.update(
        n_xors=enc_sched.n_xors,
        per_bit=enc_sched.n_xors / (2 * code.rows),
        bound_per_bit=float(k - 1),
        gap=enc_sched.n_xors - bound,
        optimal=enc_sched.n_xors == bound,
    )

    decode: list[dict] = []
    worst = 0.0
    worst_two_data = 0.0
    for pat in pats:
        sched = code.build_decode_schedule(pat)
        proof = prove_decode(code, pat, sched)
        entry = _audit_schedule(code, proof, sched)
        per_bit = sched.n_xors / (len(pat) * code.rows) if pat else 0.0
        entry.update(n_xors=sched.n_xors, per_bit=per_bit)
        worst = max(worst, per_bit)
        if len(pat) == 2 and all(c < code.k for c in pat):
            worst_two_data = max(worst_two_data, per_bit)
        decode.append(entry)

    failures: list[str] = []
    for entry in (enc, *decode):
        pr = entry["proof"]
        what = pr["kind"] if pr["kind"] == "encode" else f"decode{tuple(pr['erasures'])}"
        failures.extend(f"{what}: {msg}" for msg in pr["failures"])
        failures.extend(f"{what}: {msg}" for msg in entry["lints"])
    if family in OPTIMAL_FAMILIES and not enc["optimal"]:
        failures.append(
            f"encode: {enc_sched.n_xors} XORs exceeds the k-1 bound ({bound}) "
            f"for a family claimed optimal"
        )

    return {
        "family": family,
        "p": p,
        "k": k,
        "rows": code.rows,
        "encode": enc,
        "decode": decode,
        "decode_per_bit_max": worst,
        "decode_two_data_per_bit_max": worst_two_data,
        "failures": failures,
        "ok": not failures,
    }


def analyze_family(
    family: str,
    p: int,
    *,
    ks: Iterable[int] | None = None,
    on_progress: Callable[[str], None] | None = None,
) -> list[dict]:
    """Analyze every valid ``k`` (or the given ones) of a family at ``p``."""
    results = []
    for k in (ks if ks is not None else family_ks(family, p)):
        if on_progress:
            on_progress(f"{family} p={p} k={k}")
        results.append(analyze_geometry(family, p, k))
    return results


@dataclass
class AnalysisReport:
    """Aggregated results of an auditor run, with CI-gate semantics."""

    families: tuple[str, ...]
    primes: tuple[int, ...]
    results: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r["ok"] for r in self.results)

    @property
    def n_proofs(self) -> int:
        return sum(1 + len(r["decode"]) for r in self.results)

    def failures(self) -> list[str]:
        out = []
        for r in self.results:
            out.extend(
                f"{r['family']} p={r['p']} k={r['k']}: {msg}" for msg in r["failures"]
            )
        return out

    def to_dict(self) -> dict:
        return {
            "families": list(self.families),
            "primes": list(self.primes),
            "ok": self.ok,
            "n_geometries": len(self.results),
            "n_proofs": self.n_proofs,
            "failures": self.failures(),
            "results": self.results,
        }

    def summary_rows(self) -> list[dict]:
        """One row per (family, p): the shape ``repro analyze`` prints."""
        rows: list[dict] = []
        seen: dict[tuple[str, int], dict] = {}
        for r in self.results:
            key = (r["family"], r["p"])
            agg = seen.get(key)
            if agg is None:
                agg = {
                    "family": r["family"],
                    "p": r["p"],
                    "geometries": 0,
                    "proofs": 0,
                    "proofs_failed": 0,
                    "lints": 0,
                    "encode_optimal": True,
                    "encode_gap_max": 0,
                }
                seen[key] = agg
                rows.append(agg)
            agg["geometries"] += 1
            agg["proofs"] += 1 + len(r["decode"])
            agg["proofs_failed"] += sum(
                0 if e["proof"]["ok"] else 1 for e in (r["encode"], *r["decode"])
            )
            agg["lints"] += sum(len(e["lints"]) for e in (r["encode"], *r["decode"]))
            agg["encode_optimal"] = agg["encode_optimal"] and r["encode"]["optimal"]
            agg["encode_gap_max"] = max(agg["encode_gap_max"], r["encode"]["gap"])
        return rows


def run_analysis(
    families: Sequence[str] | None = None,
    primes: Sequence[int] = DEFAULT_PRIMES,
    *,
    ks: Iterable[int] | None = None,
    on_progress: Callable[[str], None] | None = None,
) -> AnalysisReport:
    """Run the full auditor over ``families`` x ``primes``.

    ``ks`` restricts the per-geometry sweep (values invalid for a
    family/prime are skipped); by default every valid ``k`` is proved.
    """
    fams = tuple(families) if families is not None else default_families()
    report = AnalysisReport(families=fams, primes=tuple(primes))
    for family in fams:
        for p in primes:
            valid = set(family_ks(family, p))
            use = sorted(valid & set(ks)) if ks is not None else sorted(valid)
            report.results.extend(
                analyze_family(family, p, ks=use, on_progress=on_progress)
            )
    return report
