"""Data-flow lints over the XOR-schedule IR.

The symbolic prover establishes a schedule *correct*; these lints flag
schedules that are correct but wasteful or fragile -- the defects a
schedule *generator* bug typically produces:

* ``alias``        -- an op whose source is its own destination.  A
  copy is a no-op; an accumulate zeroes the cell (``x ^ x = 0``), which
  is never how these schedules clear state.
* ``dead-write``   -- a write whose value is overwritten by a later
  copy without ever being read.  Pure wasted XORs/bandwidth.
* ``copy-clobber`` -- the dangerous flavour of dead write: the
  overwriting copy kills a chain that *accumulated* terms, i.e. partial
  parity someone paid XORs to build.  The classic generator bug is
  emitting the initial copy of a destination *after* its accumulates.
* ``self-cancel``  -- two accumulates of the same source into the same
  destination with neither cell disturbed in between: the pair is a
  GF(2) no-op costing two XORs.

The pass is linear in schedule length.  ``outputs`` (when given) adds a
final-liveness check: any cell whose last write chain was never read
and which is not an output is reported as dead.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.static.symbolic import Cell
from repro.engine.ops import Schedule

__all__ = ["Lint", "lint_schedule"]


@dataclass(frozen=True)
class Lint:
    """One data-flow finding, anchored to an op index."""

    code: str  # "alias" | "dead-write" | "copy-clobber" | "self-cancel"
    op_index: int
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] op {self.op_index}: {self.message}"


def lint_schedule(
    schedule: Schedule,
    *,
    outputs: Iterable[Cell] | None = None,
) -> list[Lint]:
    """Run all data-flow lints over ``schedule``.

    ``outputs``: the cells whose final values the schedule exists to
    produce (parity cells for encode, erased cells for decode).  When
    provided, writes left unread in any *other* cell at the end of the
    schedule are reported as dead; scratch staging cells should not be
    listed (their final values are intentionally abandoned, which is
    fine -- what they staged was read).
    """
    findings: list[Lint] = []

    # pending[c]: indices of writes to c not yet observed by any read of
    # c as a source.  An accumulate folds the prior value into the new
    # one, so prior pending writes stay pending (they still feed the
    # value a later reader would see); a copy severs the chain.
    pending: dict[Cell, list[int]] = {}
    # was_acc[c]: whether any pending write to c was an accumulate.
    was_acc: dict[Cell, bool] = {}
    # acc_pair[(dst, src)]: index of a live accumulate of src into dst,
    # invalidated by any write to src, any copy into dst, or any read of
    # dst (an observed intermediate is not redundant).
    acc_pair: dict[tuple[Cell, Cell], int] = {}

    for i, op in enumerate(schedule):
        dst, src = op.dst, op.src

        if dst == src:
            findings.append(Lint(
                "alias", i,
                f"{op}: source equals destination "
                + ("(copy is a no-op)" if op.copy else "(accumulate zeroes the cell)"),
            ))

        # The read of src consumes every pending write to src, and
        # observes src's value: pairs accumulating *into* src are no
        # longer redundant (their intermediate effect was seen).
        pending.pop(src, None)
        was_acc.pop(src, None)
        for key in [key for key in acc_pair if key[0] == src]:
            del acc_pair[key]

        if op.copy:
            killed = pending.get(dst)
            if killed:
                if was_acc.get(dst):
                    findings.append(Lint(
                        "copy-clobber", i,
                        f"{op}: copy overwrites the unread accumulation built "
                        f"by ops {killed} (initial copy ordered after its "
                        f"accumulates?)",
                    ))
                else:
                    findings.append(Lint(
                        "dead-write", i,
                        f"{op}: copy overwrites the unread write of op {killed[-1]}",
                    ))
            pending[dst] = [i]
            was_acc[dst] = False
            # A copy severs any accumulate pair into dst.
            for key in [key for key in acc_pair if key[0] == dst]:
                del acc_pair[key]
        else:
            pair = (dst, src)
            prev = acc_pair.pop(pair, None)
            if prev is not None:
                findings.append(Lint(
                    "self-cancel", i,
                    f"{op}: repeats the accumulate of op {prev} with no "
                    f"intervening write; the pair cancels over GF(2)",
                ))
            else:
                acc_pair[pair] = i
            pending.setdefault(dst, []).append(i)
            was_acc[dst] = True
        # Any write to dst invalidates pairs sourcing from dst.
        for key in [key for key in acc_pair if key[1] == dst]:
            del acc_pair[key]

    if outputs is not None:
        wanted = set(outputs)
        for cell, writes in sorted(pending.items()):
            if cell not in wanted:
                findings.append(Lint(
                    "dead-write", writes[-1],
                    f"final value of cell (c{cell[0]},r{cell[1]}) written by "
                    f"ops {writes} is never read and is not an output",
                ))
    findings.sort(key=lambda f: f.op_index)
    return findings
