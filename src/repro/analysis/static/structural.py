"""Structural (ordering) checks on schedules: the read/write discipline.

This is the canonical home of what used to be ``repro.engine.verify``
(which remains as a thin compatibility wrapper).  A schedule is only
safe to run on a damaged stripe if it never *reads* a garbage-holding
cell before *writing* it; the symbolic prover
(:mod:`repro.analysis.static.prover`) proves the final values correct,
and this pass proves the *order* is safe -- the two are complementary
(two reads of the same garbage cell cancel symbolically, yet each read
is still an ordering hazard the lints and this checker must flag).

Garbage lives in two places, and the original checker only knew about
the first:

* *unreadable columns* -- erased strips, named per call;
* *garbage cells* -- scratch/workspace cells (``RAID6Code.n_scratch``
  columns) whose initial contents are whatever the buffer last held.
  The EVENODD/RDP decoders stage their adjuster there with a copy
  before any read; a reordered schedule that reads the staging cell
  first silently consumes garbage, and the later copy must *not* be
  treated as making those prior reads safe.  ``garbage_cols`` closes
  that hole (see the regression tests in ``tests/engine/test_verify.py``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.engine.ops import Schedule
from repro.engine.verify import ScheduleViolation

__all__ = ["check_structure", "ScheduleViolation"]

Cell = tuple[int, int]


def check_structure(
    schedule: Schedule,
    *,
    unreadable_cols: Iterable[int] = (),
    garbage_cols: Iterable[int] = (),
    garbage_cells: Iterable[Cell] = (),
    required_dsts: Iterable[Cell] | None = None,
    collect: bool = False,
) -> list[str]:
    """Check a schedule's read/write ordering discipline.

    ``unreadable_cols`` and ``garbage_cols`` are synonymous for the
    check (both hold garbage until written; the former names erased
    strips, the latter scratch workspace) and are kept separate only so
    diagnostics can say which kind of garbage was read.
    ``garbage_cells`` adds individual cells.  ``required_dsts`` lists
    cells the schedule must write at least once.

    Raises :class:`ScheduleViolation` on the first defect, or -- with
    ``collect=True`` -- returns every violation message instead.
    """
    unreadable = set(unreadable_cols)
    scratch = set(garbage_cols)
    garbage: set[Cell] = set(garbage_cells)
    for col in unreadable | scratch:
        for row in range(schedule.rows):
            garbage.add((col, row))

    problems: list[str] = []

    def violation(msg: str) -> None:
        if collect:
            problems.append(msg)
        else:
            raise ScheduleViolation(msg)

    def kind(cell: Cell) -> str:
        if cell[0] in unreadable:
            return f"unreadable column {cell[0]}"
        if cell[0] in scratch:
            return f"garbage (scratch) column {cell[0]}"
        return "garbage cell"

    written: set[Cell] = set()
    for i, op in enumerate(schedule):
        if op.src in garbage and op.src not in written:
            violation(
                f"op {i} ({op}) reads unwritten cell {op.src} of {kind(op.src)}"
            )
        if not op.copy and op.dst in garbage and op.dst not in written:
            violation(
                f"op {i} ({op}) accumulates into unwritten cell {op.dst} "
                f"of {kind(op.dst)}"
            )
        written.add(op.dst)

    if required_dsts is not None:
        missing = set(required_dsts) - written
        if missing:
            violation(
                f"schedule never writes {len(missing)} required cells, "
                f"e.g. {sorted(missing)[:4]}"
            )
    return problems
