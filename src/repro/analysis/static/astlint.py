"""Project AST lint: the simulation-seam invariant.

The deterministic-simulation harness (``repro.sim``) only works if
library code never consults an ambient source of nondeterminism -- a
wall clock or a process-global RNG -- behind the simulator's back.
Time must flow through the sim clock, and randomness through a seeded
generator passed in by the caller.  This pass walks every module's AST
and flags, outside the approved seams:

* calls to ``time.time`` / ``time.sleep`` / ``time.monotonic`` /
  ``time.perf_counter`` (and their ``_ns`` / ``process_time``
  variants), however the module was imported or the function aliased;
* calls through the ``random`` module's *global* generator
  (``random.random()``, ``random.randint``, ``random.seed``, ...) and
  the legacy ``numpy.random.*`` global equivalents;
* **unseeded** explicit generators -- ``random.Random()`` or
  ``numpy.random.default_rng()`` with no arguments, which smuggle in OS
  entropy.  Seeded instances are fine anywhere: an explicitly-seeded,
  dependency-injected generator *is* the approved pattern.

Approved seams: ``repro.sim`` (owns simulated time/randomness) and
``repro.bench`` (wall-clock measurement is its whole point --
``repro.bench.wallclock`` is where code with a legitimate wall-clock
need imports it from).  The observability layer (``repro.obs``) is
deliberately *not* a seam: a tracer only ever reads the clock it was
handed (``Tracer(now=...)``), so the lint holds over it like any other
library code -- which is what makes its traces deterministic under the
simulator.  The same goes for the object gateway (``repro.gateway``),
workload driver included: its clock is injected and its op stream is
drawn from an explicitly seeded generator, which is exactly what lets
the sim-mode benchmark produce a byte-stable digest.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.concurrency.findings import seam_match

__all__ = [
    "AstLintFinding",
    "DEFAULT_SEAMS",
    "TESTS_SEAMS",
    "lint_source",
    "lint_project",
]

#: Module path prefixes (relative to the package root, "/"-separated)
#: where wall clocks and randomness are part of the contract.
DEFAULT_SEAMS: tuple[str, ...] = ("sim/", "sim.py", "bench/", "bench.py")

#: Allowlist for sweeping the repo's ``tests/`` tree: files whose tests
#: measure wall-clock behaviour on purpose.  Everything else in tests/
#: must hold the same sim-seam invariant as library code -- a test that
#: sleeps or reads the wall clock is a flaky test waiting to happen.
#:
#: * ``bench`` -- benchmark tests time real execution by contract.
#: * ``sim/test_clock.py`` -- exercises the RealClock half of the seam.
#: * ``sim/test_differential.py`` -- drives fuzz time budgets through
#:   ``time.monotonic`` deadlines (the fuzz loop's documented wallclock).
#: * ``test_cli.py`` -- boots real subprocess servers and polls with
#:   wall-clock timeouts.
TESTS_SEAMS: tuple[str, ...] = (
    "bench",
    "sim/test_clock.py",
    "sim/test_differential.py",
    "test_cli.py",
)

_CLOCK_CALLS = frozenset(
    f"time.{name}"
    for name in (
        "time", "time_ns", "sleep", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    )
)


@dataclass(frozen=True)
class AstLintFinding:
    """One sim-seam violation in project source."""

    path: str
    line: int
    symbol: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.symbol}: {self.message}"


class _SeamVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[AstLintFinding] = []
        #: local name -> fully qualified dotted name it stands for.
        self.aliases: dict[str, str] = {}

    # -- import tracking ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- call resolution ---------------------------------------------------

    def _qualname(self, expr: ast.expr) -> str | None:
        """Resolve an expression to a dotted name, through import aliases."""
        parts: list[str] = []
        while isinstance(expr, ast.Attribute):
            parts.append(expr.attr)
            expr = expr.value
        if not isinstance(expr, ast.Name):
            return None
        parts.append(self.aliases.get(expr.id, expr.id))
        return ".".join(reversed(parts))

    def _flag(self, node: ast.Call, symbol: str, message: str) -> None:
        self.findings.append(
            AstLintFinding(self.path, node.lineno, symbol, message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        full = self._qualname(node.func)
        if full is not None:
            self._check_call(node, full)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, full: str) -> None:
        if full in _CLOCK_CALLS:
            self._flag(
                node, full,
                "wall-clock call outside the sim seam; take time from the "
                "simulation clock or a caller-provided now()",
            )
            return
        root, _, rest = full.partition(".")
        if root == "random" and rest:
            if rest == "Random":
                if not node.args and not node.keywords:
                    self._flag(
                        node, full,
                        "unseeded random.Random() draws OS entropy; pass an "
                        "explicit seed or a caller-provided generator",
                    )
            else:
                self._flag(
                    node, full,
                    "call through the process-global random generator; use a "
                    "seeded random.Random instance passed in by the caller",
                )
            return
        if full.startswith("numpy.random.") or full.startswith("np.random."):
            leaf = full.rsplit(".", 1)[1]
            if leaf == "default_rng":
                if not node.args and not node.keywords:
                    self._flag(
                        node, full,
                        "unseeded numpy default_rng() draws OS entropy; pass "
                        "an explicit seed",
                    )
            elif leaf not in ("Generator", "SeedSequence", "BitGenerator", "PCG64"):
                self._flag(
                    node, full,
                    "legacy numpy global-RNG call; use a seeded "
                    "numpy.random.default_rng(seed) generator",
                )


def lint_source(source: str, path: str) -> list[AstLintFinding]:
    """Lint one module's source text (``path`` is for diagnostics)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # a broken file is itself a finding
        return [AstLintFinding(path, exc.lineno or 0, "syntax", str(exc.msg))]
    visitor = _SeamVisitor(path)
    visitor.visit(tree)
    return visitor.findings


def lint_project(
    root: str | Path | None = None,
    *,
    seams: tuple[str, ...] = DEFAULT_SEAMS,
) -> list[AstLintFinding]:
    """Lint every module under ``root`` (default: the installed
    ``repro`` package), skipping the approved seam subtrees."""
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    findings: list[AstLintFinding] = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        # Exact-boundary match: seam "sim" (or "sim/") exempts sim.py and
        # the sim/ subtree but never a same-prefix sibling (simulators/,
        # sim_extras.py) -- a bare startswith() would skip those too.
        if any(seam_match(rel, seam) for seam in seams):
            continue
        findings.extend(lint_source(path.read_text(encoding="utf-8"), rel))
    return findings
