"""Static analysis of XOR schedules: symbolic proofs, optimality audits,
data-flow lints and the project AST lint.

The paper's entire contribution is an XOR-count claim -- Algorithms 1-4
hit the ``k-1`` XORs-per-parity-bit lower bound -- and the rest of this
repository validates schedules *dynamically* (execute and compare).
This package closes the loop statically: every compiled
:class:`~repro.engine.ops.Schedule` is a straight-line GF(2) program, so
it can be *proved* equal to its parity specification by abstract
interpretation over symbolic cell states, without touching a byte of
data.

* :mod:`repro.analysis.static.symbolic` -- the abstract interpreter.
  A cell's state is the :class:`frozenset` of initial-cell atoms whose
  GF(2) sum it currently holds; XOR is symmetric difference.
* :mod:`repro.analysis.static.spec` -- per-family parity-bit
  specifications (which data bits each parity bit must equal), derived
  from the codes' defining equations / generator matrices, *not* from
  their schedule builders.
* :mod:`repro.analysis.static.prover` -- proves encode and decode
  schedules functionally correct per ``(family, p, k, erasures)``.
* :mod:`repro.analysis.static.structural` -- the ordering/garbage
  read-write discipline checker (the former ``repro.engine.verify``,
  extended with scratch-column garbage tracking).
* :mod:`repro.analysis.static.lints` -- data-flow lints over the IR:
  dead writes, self-cancelling XOR pairs, copy-after-accumulate
  clobbers, aliasing hazards.
* :mod:`repro.analysis.static.audit` -- the XOR-optimality auditor and
  the machine-readable report behind ``repro analyze`` and the CI gate.
* :mod:`repro.analysis.static.astlint` -- the project-source AST lint
  enforcing the simulation-seam invariant (no wall clocks / ambient
  randomness outside approved seams).
"""

from repro.analysis.static.symbolic import (
    Atom,
    Expr,
    data_atom,
    garbage_atom,
    pristine_state,
    symbolic_execute,
    symbolic_execute_groups,
)
from repro.analysis.static.structural import check_structure
from repro.analysis.static.spec import parity_spec, spec_xor_lower_bound
from repro.analysis.static.prover import (
    Proof,
    erasure_patterns,
    prove_decode,
    prove_encode,
    prove_code,
)
from repro.analysis.static.lints import Lint, lint_schedule
from repro.analysis.static.audit import (
    AnalysisReport,
    analyze_family,
    default_families,
    run_analysis,
)
from repro.analysis.static.astlint import AstLintFinding, lint_project

__all__ = [
    "Atom",
    "Expr",
    "data_atom",
    "garbage_atom",
    "pristine_state",
    "symbolic_execute",
    "symbolic_execute_groups",
    "check_structure",
    "parity_spec",
    "spec_xor_lower_bound",
    "Proof",
    "erasure_patterns",
    "prove_encode",
    "prove_decode",
    "prove_code",
    "Lint",
    "lint_schedule",
    "AnalysisReport",
    "analyze_family",
    "default_families",
    "run_analysis",
    "AstLintFinding",
    "lint_project",
]
