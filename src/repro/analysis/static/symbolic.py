"""Symbolic GF(2) interpretation of XOR schedules.

A :class:`~repro.engine.ops.Schedule` is a straight-line program over
GF(2): every reachable cell value is the XOR of some subset of the
stripe's *initial* cell values.  That makes exact abstract
interpretation trivial -- represent each cell's state as the
``frozenset`` of initial-cell *atoms* whose GF(2) sum it holds, and
interpret

* ``dst <- src``        as  ``state[dst] = state[src]``
* ``dst <- dst ^ src``  as  ``state[dst] = state[dst] ^ state[src]``
  (symmetric difference -- terms appearing twice cancel, exactly as XOR
  does).

The result is not an approximation: the final symbolic state *is* the
schedule's semantics, so comparing it against a code family's parity
specification (:mod:`repro.analysis.static.spec`) proves functional
correctness for every input, without executing a single byte.

Atoms are ``(tag, col, row)`` tuples.  Tag ``"d"`` marks a meaningful
initial value (a data bit, or a parity bit a decoder may rely on); tag
``"g"`` marks *garbage* -- an erased strip's contents or an
uninitialised scratch cell.  Garbage atoms flow through the
interpretation like any other term, so a schedule whose output depends
on garbage is caught by the final spec comparison (the output set
contains a ``"g"`` atom), even when the garbage read is far from the
output it corrupts.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.engine.ops import Schedule

__all__ = [
    "Atom",
    "Expr",
    "Cell",
    "State",
    "data_atom",
    "garbage_atom",
    "is_garbage",
    "pristine_state",
    "symbolic_execute",
    "symbolic_execute_groups",
    "format_expr",
]

#: One initial cell value: ``(tag, col, row)`` with tag "d" or "g".
Atom = tuple[str, int, int]

#: A GF(2) expression: the set of atoms whose XOR the value equals.
Expr = frozenset  # frozenset[Atom]

#: A stripe cell address ``(col, row)``.
Cell = tuple[int, int]

#: Symbolic machine state: cell -> expression it currently holds.
State = dict[Cell, Expr]

#: The symbolic zero (empty XOR).
ZERO: Expr = frozenset()


def data_atom(col: int, row: int) -> Atom:
    """The atom for the meaningful initial content of ``(col, row)``."""
    return ("d", col, row)


def garbage_atom(col: int, row: int) -> Atom:
    """The atom for the garbage initial content of ``(col, row)``."""
    return ("g", col, row)


def is_garbage(atom: Atom) -> bool:
    return atom[0] == "g"


def pristine_state(
    cols: int,
    rows: int,
    *,
    garbage_cells: Iterable[Cell] = (),
    overrides: dict[Cell, Expr] | None = None,
) -> State:
    """The symbolic state of an untouched stripe.

    Every cell holds its own data atom, except ``garbage_cells`` (their
    own garbage atom) and ``overrides`` (an explicit expression -- e.g.
    a surviving parity cell holding its specification value).
    """
    garbage = set(garbage_cells)
    state: State = {}
    for col in range(cols):
        for row in range(rows):
            cell = (col, row)
            if cell in garbage:
                state[cell] = frozenset((garbage_atom(col, row),))
            else:
                state[cell] = frozenset((data_atom(col, row),))
    if overrides:
        for cell, expr in overrides.items():
            state[cell] = frozenset(expr)
    return state


def symbolic_execute(schedule: Schedule, state: State | None = None) -> State:
    """Interpret ``schedule`` over symbolic cell states.

    ``state`` defaults to :func:`pristine_state` of the schedule's
    shape (all cells meaningful).  The passed dict is not mutated; the
    returned dict is the final machine state.
    """
    if state is None:
        state = pristine_state(schedule.cols, schedule.rows)
    current = dict(state)
    for op in schedule:
        src = current[op.src]
        if op.copy:
            current[op.dst] = src
        else:
            current[op.dst] = current[op.dst] ^ src
    return current


def symbolic_execute_groups(
    cols: int,
    rows: int,
    groups: Iterable[tuple[int, Iterable[int], bool]],
    state: State | None = None,
) -> State:
    """Interpret fused executor groups (see ``repro.engine.executor``).

    Each group is ``(dst, srcs, init_copy)`` over *flat* cell indices
    (``col * rows + row``): ``dst <- (0 if init_copy else dst) ^
    xor(srcs)``, with every source read at the group's execution point.
    Used to prove that schedule compilation preserved semantics.
    """
    if state is None:
        state = pristine_state(cols, rows)
    current = dict(state)

    def cell(flat: int) -> Cell:
        return (flat // rows, flat % rows)

    for dst, srcs, init_copy in groups:
        acc: Expr = ZERO if init_copy else current[cell(dst)]
        for s in srcs:
            acc = acc ^ current[cell(s)]
        current[cell(dst)] = acc
    return current


def format_expr(expr: Expr, limit: int = 8) -> str:
    """Human-readable rendering of an expression (for diagnostics)."""
    if not expr:
        return "0"
    terms = sorted(expr)
    shown = [
        ("garbage" if tag == "g" else "b") + f"[c{col},r{row}]"
        for tag, col, row in terms[:limit]
    ]
    if len(terms) > limit:
        shown.append(f"... ({len(terms) - limit} more)")
    return " ^ ".join(shown)
