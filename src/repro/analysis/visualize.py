"""Text renderers for codeword geometry and schedule structure.

:func:`constraint_grid` reproduces the paper's Fig. 2/3 notation: each
data cell is labelled with its row-parity constraint (``1``-based
number, as in the paper) and the anti-diagonal constraints it belongs
to (capital letters, including extra-bit membership), e.g. ``3BC`` for
the cell that is in row constraint 3, native to anti-diagonal B, and
the extra bit of C.

:func:`schedule_stats` summarises an XOR program: op/XOR/copy counts,
the dependency *depth* (longest chain -- the serial latency floor) and
*width* (peak ops per level -- available parallelism).
"""

from __future__ import annotations

import string
from dataclasses import dataclass

from repro.core.geometry import LiberationGeometry
from repro.engine.ops import Schedule

__all__ = ["constraint_grid", "erasure_grid", "schedule_stats", "ScheduleStats"]


def _labels(geo: LiberationGeometry) -> list[list[str]]:
    letters = string.ascii_uppercase
    if geo.p > len(letters):
        raise ValueError(f"grid rendering supports p <= {len(letters)}")
    cells = []
    for i in range(geo.p):
        row = []
        for j in range(geo.k):
            tag = str(i + 1)  # the paper numbers row constraints from 1
            native = geo.anti_diag_of(i, j)
            memberships = {native}
            extra_d = geo.extra_diag_of_column(j) if j > 0 else None
            if extra_d is not None and geo.extra_bit(extra_d) == (i, j):
                memberships.add(extra_d)
            tag += "".join(letters[d] for d in sorted(memberships))
            row.append(tag)
        cells.append(row)
    return cells


def constraint_grid(geo: LiberationGeometry) -> str:
    """Fig. 2-style grid of row/anti-diagonal constraint membership."""
    cells = _labels(geo)
    letters = string.ascii_uppercase
    width = max(len(c) for row in cells for c in row) + 1
    header = "".join(str(j).ljust(width) for j in range(geo.k)) + "P".ljust(width) + "Q"
    lines = ["    " + header]
    for i in range(geo.p):
        body = "".join(cells[i][j].ljust(width) for j in range(geo.k))
        body += str(i + 1).ljust(width) + letters[i]
        lines.append(f"{i:<3} " + body)
    return "\n".join(lines) + "\n"


def erasure_grid(geo: LiberationGeometry, erasures) -> str:
    """The constraint grid with erased columns crossed out (Fig. 4)."""
    cells = _labels(geo)
    erased = set(erasures)
    letters = string.ascii_uppercase
    width = max(len(c) for row in cells for c in row) + 1
    for i in range(geo.p):
        for j in range(geo.k):
            if j in erased:
                cells[i][j] = "x" * len(cells[i][j])
    header = "".join(str(j).ljust(width) for j in range(geo.k)) + "P".ljust(width) + "Q"
    lines = ["    " + header]
    for i in range(geo.p):
        body = "".join(cells[i][j].ljust(width) for j in range(geo.k))
        p_tag = "x" if geo.p_col in erased else str(i + 1)
        q_tag = "x" if geo.q_col in erased else letters[i]
        body += p_tag.ljust(width) + q_tag
        lines.append(f"{i:<3} " + body)
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class ScheduleStats:
    """Structural summary of an XOR program."""

    ops: int
    xors: int
    copies: int
    depth: int  # longest dependency chain (critical path, in ops)
    width: int  # peak independent ops on one level
    destinations: int

    @property
    def parallelism(self) -> float:
        """Average available parallelism (ops / depth)."""
        return self.ops / self.depth if self.depth else 0.0


def schedule_stats(sched: Schedule) -> ScheduleStats:
    """Dependency depth/width analysis of a schedule.

    An op depends on the last writer of its source, and (for
    accumulates) the last writer of its destination; write-after-read
    and write-after-write are also ordered.  Level = 1 + max(dep
    levels), exactly the levelization the batched executor uses.
    """
    write_level: dict[tuple[int, int], int] = {}
    touch_level: dict[tuple[int, int], int] = {}
    per_level: dict[int, int] = {}
    depth = 0
    for op in sched:
        lvl = 1 + max(
            write_level.get(op.src, 0),
            write_level.get(op.dst, 0) if not op.copy else 0,
            touch_level.get(op.dst, 0),
        )
        write_level[op.dst] = lvl
        touch_level[op.dst] = max(touch_level.get(op.dst, 0), lvl)
        touch_level[op.src] = max(touch_level.get(op.src, 0), lvl)
        per_level[lvl] = per_level.get(lvl, 0) + 1
        depth = max(depth, lvl)
    return ScheduleStats(
        ops=len(sched),
        xors=sched.n_xors,
        copies=sched.n_copies,
        depth=depth,
        width=max(per_level.values(), default=0),
        destinations=len(sched.destinations()),
    )
