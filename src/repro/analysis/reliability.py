"""Reliability models for RAID-5 vs RAID-6 arrays.

The paper's §I argument, made quantitative: with modern disk capacities
(tens of TB), a fairly constant unrecoverable-error rate (~1e-15/bit
for nearline SATA) and bounded transfer rates (days-long rebuilds), a
RAID-5 rebuild reads so much data that hitting at least one
unrecoverable sector -- and losing data -- becomes *likely*; RAID-6
survives exactly that event, plus a second whole-disk failure.

Standard Markov MTTDL approximations (Patterson/Gibson/Katz lineage)
with an extra term for unrecoverable read errors (UREs) during rebuild.
Exponential failure/repair assumptions apply, as usual; these are
comparison tools, not certification models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "DiskModel",
    "rebuild_read_failure_probability",
    "mttdl_raid5",
    "mttdl_raid6",
]


@dataclass(frozen=True)
class DiskModel:
    """Reliability parameters of one disk.

    ``mtbf_hours``: mean time between whole-disk failures.
    ``capacity_bytes``: user capacity (what a rebuild must read).
    ``ure_per_bit``: unrecoverable read error probability per bit read
    (vendor spec sheets quote e.g. ``1e-14`` for desktop, ``1e-15``
    for nearline/enterprise SATA).
    ``rebuild_hours``: time to rewrite one replacement disk.
    """

    mtbf_hours: float = 1.0e6
    capacity_bytes: float = 16e12
    ure_per_bit: float = 1e-15
    rebuild_hours: float = 30.0

    def __post_init__(self) -> None:
        if min(self.mtbf_hours, self.capacity_bytes, self.rebuild_hours) <= 0:
            raise ValueError("disk parameters must be positive")
        if not 0 <= self.ure_per_bit < 1:
            raise ValueError("ure_per_bit must be a probability per bit")

    @property
    def failure_rate(self) -> float:
        """lambda, failures per hour."""
        return 1.0 / self.mtbf_hours

    @property
    def repair_rate(self) -> float:
        """mu, repairs per hour."""
        return 1.0 / self.rebuild_hours


def rebuild_read_failure_probability(disk: DiskModel, n_read_disks: int) -> float:
    """P(at least one URE while reading ``n_read_disks`` full disks).

    A degraded RAID-5 rebuild reads every surviving disk end to end;
    one URE anywhere means an unrecoverable stripe.  Computed in log
    space so enormous bit counts stay stable.
    """
    if n_read_disks < 0:
        raise ValueError("n_read_disks must be non-negative")
    bits = disk.capacity_bytes * 8 * n_read_disks
    # P(no error) = (1 - p)^bits; use log1p for precision.
    log_ok = bits * math.log1p(-disk.ure_per_bit)
    return -math.expm1(log_ok)


def mttdl_raid5(disk: DiskModel, n_disks: int) -> float:
    """MTTDL (hours) of an ``n``-disk RAID-5 group, URE-aware.

    Data is lost when (a) a second disk dies during rebuild, or (b) the
    rebuild hits a URE.  Path (b) is folded in by thinning the success
    of the first-failure state: with probability ``P_ure`` the rebuild
    itself fails.
    """
    if n_disks < 3:
        raise ValueError("RAID-5 needs at least 3 disks")
    lam, mu = disk.failure_rate, disk.repair_rate
    p_ure = rebuild_read_failure_probability(disk, n_disks - 1)
    # From the degraded state: loss at rate (n-1)lam (second failure)
    # + mu * P_ure (rebuild completes but was poisoned); recovery at
    # rate mu (1 - P_ure).
    enter = n_disks * lam
    loss = (n_disks - 1) * lam + mu * p_ure
    recover = mu * (1 - p_ure)
    # Standard 2-state absorbing-chain solution.
    return (enter + loss + recover) / (enter * loss)


def mttdl_raid6(disk: DiskModel, n_disks: int) -> float:
    """MTTDL (hours) of an ``n``-disk RAID-6 group (n = k + 2).

    Two degraded states; a URE is only fatal while *two* disks are
    already down (with one down, the second parity absorbs it -- the
    precise property the paper's §I highlights).
    """
    if n_disks < 4:
        raise ValueError("RAID-6 needs at least 4 disks")
    lam, mu = disk.failure_rate, disk.repair_rate
    p_ure2 = rebuild_read_failure_probability(disk, n_disks - 2)

    # States: 0 (healthy) -> 1 (one down) -> 2 (two down) -> loss.
    # From state 2: loss at rate (n-2)lam + mu*p_ure2, repair mu(1-p_ure2).
    a = n_disks * lam  # 0 -> 1
    b = (n_disks - 1) * lam  # 1 -> 2
    r1 = mu  # 1 -> 0
    c = (n_disks - 2) * lam + mu * p_ure2  # 2 -> loss
    r2 = mu * (1 - p_ure2)  # 2 -> 1
    # Mean absorption time from state 0 of the 3-transient-state chain,
    # solved from the linear system  (T = expected time to loss):
    #   T0 = 1/a + T1
    #   T1 = 1/(b+r1) + (b T2 + r1 T0)/(b+r1)
    #   T2 = 1/(c+r2) + (r2 T1)/(c+r2)
    # Solve for T0 symbolically:
    d1 = b + r1
    d2 = c + r2
    # T1 expressed via T1 after eliminating T0 and T2:
    #   T1 = [1 + b*(1 + r2*T1)/d2 + r1*(1/a + T1) * ... ]  -- do it stepwise.
    # T0 = 1/a + T1 ; T2 = (1 + r2*T1)/d2
    # T1 * d1 = 1 + b*T2 + r1*T0
    #         = 1 + b*(1 + r2*T1)/d2 + r1*(1/a) + r1*T1
    lhs = d1 - b * r2 / d2 - r1
    rhs = 1 + b / d2 + r1 / a
    t1 = rhs / lhs
    return 1 / a + t1
