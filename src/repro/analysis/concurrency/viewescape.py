"""Pass 3: memoryview escape/aliasing analysis for the zero-copy path.

PR 7 made borrowed views the wire currency: ``words_view`` returns a
memoryview over the coder's working buffer, ``frame_parts`` casts
payloads to flat byte views, node/client/rebuild/txn ship
``np.ascontiguousarray(...).data`` straight onto the asyncio transport.
The performance is real and so is the hazard: a view is a *loan*, and
Python will not stop the lender from reusing the buffer while the loan
is out.  The two failure shapes this pass hunts:

* the **escaping loan** -- a view stored into long-lived state
  (``self.something = view``, ``self.cache[k] = view``, a module
  global, a closure that outlives the frame).  The borrowed buffer's
  owner has no idea the reference exists; the next encode reuses the
  scratch buffer and the stored "snapshot" silently changes under the
  reader.
* the **concurrent write** -- the buffer is mutated while an exported
  view is still in flight (e.g. queued on a transport that has not
  drained).  Static analysis approximates this as "view handed to an
  awaited call, then the source buffer written in the same function";
  the runtime alias sanitizer (:mod:`.sanitizer`) catches the cases
  dataflow cannot see.

Findings:

* ``MVE301`` -- a view-typed value assigned into ``self.*`` /
  ``cls.*`` / a subscript of an attribute / a module-level name.
* ``MVE302`` -- a view captured by a closure (``lambda``/nested def)
  that is itself returned or stored, extending the loan past the frame.
* ``MVE303`` -- a write through a buffer after a view of it was handed
  to an awaited call in the same function body (the static shadow of
  the sanitizer's write-after-handoff event).

**Laundering** ends the loan: ``bytes(v)``, ``v.tobytes()``,
``v.copy()``, ``np.array(v)`` (copy=True default), ``bytearray(v)``
all materialise fresh storage, and the result is no longer tracked.
Returning a view is *not* flagged: the whole zero-copy design is
producers loaning views upward, and the API contract (documented in
``docs/engine.md``) puts the burden on the caller -- which is exactly
where this pass looks.
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency.findings import (
    Finding,
    apply_suppressions,
    iter_modules,
)

__all__ = ["VIEW_SEAMS", "scan_views_source", "scan_views_project"]

#: analysis/ reasons *about* views symbolically; bench is wall-clock land.
VIEW_SEAMS: tuple[str, ...] = ("bench", "analysis")

#: Call names (terminal) that produce a borrowed view.
_VIEW_CALLS = frozenset({"memoryview", "words_view", "frame_parts"})
_VIEW_QUALS = frozenset({"np.frombuffer", "numpy.frombuffer"})
#: Method names that produce a view of the receiver.
_VIEW_METHODS = frozenset({"cast", "view"})
#: Attribute access producing a view (numpy ``.data``).
_VIEW_ATTRS = frozenset({"data"})
#: Calls/methods that copy -- the result owns its storage.
_LAUNDER_CALLS = frozenset({"bytes", "bytearray", "list"})
_LAUNDER_QUALS = frozenset({"np.array", "numpy.array", "np.copy", "numpy.copy"})
_LAUNDER_METHODS = frozenset({"tobytes", "copy", "hex"})


def _terminal_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _qual(func: ast.expr, aliases: dict[str, str]) -> str | None:
    parts: list[str] = []
    expr = func
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if not isinstance(expr, ast.Name):
        return None
    parts.append(aliases.get(expr.id, expr.id))
    return ".".join(reversed(parts))


class _FuncViewScanner:
    """Dataflow over one function body tracking view-tainted names."""

    def __init__(
        self, outer: "_ViewVisitor",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.outer = outer
        self.node = node
        #: local name -> source-buffer expr text (or "" if unknown)
        self.views: dict[str, str] = {}
        #: buffers whose views were handed to an awaited call: text -> lineno
        self.handed: dict[str, int] = {}

    # -- taint sources -------------------------------------------------------

    def is_view_expr(self, expr: ast.expr) -> bool:
        """Does this expression evaluate to a borrowed view?"""
        if isinstance(expr, ast.Name):
            return expr.id in self.views
        if isinstance(expr, ast.Attribute):
            # ``np.ascontiguousarray(x).data`` / ``arr.data`` where arr is
            # itself a tracked view; a bare ``obj.data`` on an unknown
            # receiver is NOT assumed to be a buffer view (too many false
            # positives on response objects and dataclasses).
            return expr.attr in _VIEW_ATTRS and (
                isinstance(expr.value, ast.Call) or self.is_view_expr(expr.value)
            )
        if isinstance(expr, ast.Call):
            name = _terminal_name(expr.func)
            qual = _qual(expr.func, self.outer.aliases)
            if name in _LAUNDER_CALLS or name in _LAUNDER_METHODS:
                return False
            if qual in _LAUNDER_QUALS:
                return False
            if name in _VIEW_CALLS or qual in _VIEW_QUALS:
                return True
            if (
                name in _VIEW_METHODS
                and isinstance(expr.func, ast.Attribute)
                and self.is_view_expr(expr.func.value)
            ):
                return True
            return False
        if isinstance(expr, ast.Subscript):
            # slicing a view yields a view of the same buffer
            return (
                isinstance(expr.slice, ast.Slice)
                and self.is_view_expr(expr.value)
            )
        if isinstance(expr, ast.IfExp):
            return self.is_view_expr(expr.body) or self.is_view_expr(expr.orelse)
        return False

    def _source_of(self, expr: ast.expr) -> str:
        """Best-effort name of the underlying buffer for an expr."""
        if isinstance(expr, ast.Name):
            return self.views.get(expr.id, expr.id)
        if isinstance(expr, ast.Call):
            # memoryview(buf) / words_view(buf) / buf.cast(...)
            if isinstance(expr.func, ast.Attribute):
                return self._source_of(expr.func.value)
            if expr.args:
                return self._source_of(expr.args[0])
        if isinstance(expr, ast.Attribute):
            return self._source_of(expr.value)
        if isinstance(expr, ast.Subscript):
            return self._source_of(expr.value)
        try:
            return ast.unparse(expr)
        except Exception:  # pragma: no cover
            return "<expr>"

    # -- walk ----------------------------------------------------------------

    def scan(self) -> None:
        for stmt in self.node.body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.outer._scan_function(stmt, parent_views=set(self.views))
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._check_write(stmt.target, stmt.lineno)
        # recurse into compound statements
        for field in ("body", "orelse", "finalbody"):
            for sub in getattr(stmt, field, []):
                self._stmt(sub)
        for handler in getattr(stmt, "handlers", []):
            for sub in handler.body:
                self._stmt(sub)
        # expression statements: look for awaited handoffs + writes
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._expr(expr)

    def _assign(self, targets: list[ast.expr], value: ast.expr) -> None:
        self._expr(value)
        is_view = self.is_view_expr(value)
        src = self._source_of(value) if is_view else ""
        for target in targets:
            if isinstance(target, ast.Name):
                if is_view:
                    self.views[target.id] = src
                else:
                    self.views.pop(target.id, None)
            elif is_view and isinstance(target, ast.Attribute):
                # self.x = view / obj.x = view -- the escaping loan
                self.outer._flag(
                    value, "MVE301", self._escape_symbol(target),
                    "borrowed view stored into long-lived state: the buffer's "
                    "owner can reuse it and this reference silently mutates -- "
                    "copy (bytes()/tobytes()) or document ownership transfer",
                )
            elif is_view and isinstance(target, ast.Subscript):
                base = target.value
                if isinstance(base, ast.Attribute) or (
                    isinstance(base, ast.Name) and base.id in self.outer.module_names
                ):
                    self.outer._flag(
                        value, "MVE301", self._escape_symbol(target),
                        "borrowed view stored into a long-lived container: "
                        "the loaned buffer outlives no one's intent -- copy "
                        "before storing or pin the source explicitly",
                    )
            else:
                self._check_write(target, getattr(target, "lineno", 0))

    def _escape_symbol(self, target: ast.expr) -> str:
        try:
            return ast.unparse(target)
        except Exception:  # pragma: no cover
            return "<target>"

    def _check_write(self, target: ast.expr, lineno: int) -> None:
        """A subscript-store into a buffer with a live handed-off view."""
        if isinstance(target, ast.Subscript):
            src = self._source_of(target.value)
            if src in self.handed:
                self.outer._flag_at(
                    lineno, "MVE303", src,
                    f"buffer {src!r} written after a view of it was handed "
                    f"to an awaited call (line {self.handed[src]}): the "
                    "consumer may still be reading -- reorder, copy, or let "
                    "the alias sanitizer arbitrate at runtime",
                )

    def _expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                for arg in node.value.args:
                    if self.is_view_expr(arg):
                        self.handed[self._source_of(arg)] = node.lineno
            elif isinstance(node, ast.Lambda):
                for name in {
                    n.id for n in ast.walk(node.body)
                    if isinstance(n, ast.Name) and n.id in self.views
                }:
                    self.outer._flag(
                        node, "MVE302", name,
                        f"closure captures borrowed view {name!r}: if the "
                        "closure outlives this frame the loan does too -- "
                        "bind a copy instead",
                    )


class _ViewVisitor:
    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self.aliases: dict[str, str] = {}
        #: module-level assigned names (stores into these = long-lived)
        self.module_names: set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.module_names.add(t.id)
        self._tree = tree

    def run(self) -> None:
        for node in ast.walk(self._tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node, parent_views=set())

    _scanned: set[int]

    def _scan_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        parent_views: set[str],
    ) -> None:
        if not hasattr(self, "_scanned"):
            self._scanned = set()
        if id(node) in self._scanned:
            return
        self._scanned.add(id(node))
        scanner = _FuncViewScanner(self, node)
        for name in parent_views:
            scanner.views[name] = name
        scanner.scan()
        # closure capture of a view by a *named* nested def that escapes
        # is approximated by the lambda check inside _expr; nested defs
        # were scanned with parent views seeded above.

    def _flag(self, node: ast.AST, code: str, symbol: str, message: str) -> None:
        self.findings.append(
            Finding(code, self.path, getattr(node, "lineno", 0), symbol, message)
        )

    def _flag_at(self, lineno: int, code: str, symbol: str, message: str) -> None:
        self.findings.append(Finding(code, self.path, lineno, symbol, message))


def scan_views_source(source: str, path: str) -> list[Finding]:
    """Scan one module; inline suppressions applied."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("MVE300", path, exc.lineno or 0, "syntax", str(exc.msg))]
    visitor = _ViewVisitor(path, tree)
    visitor.run()
    kept, _ = apply_suppressions(visitor.findings, source)
    return kept


def scan_views_project(root=None, *, seams: tuple[str, ...] = VIEW_SEAMS) -> list[Finding]:
    """Scan every module under ``root`` (default: installed package)."""
    findings: list[Finding] = []
    for rel, source in iter_modules(root, seams=seams):
        findings.extend(scan_views_source(source, rel))
    return findings
