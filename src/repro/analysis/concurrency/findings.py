"""Shared plumbing for the concurrency analyzer's findings.

Every pass in :mod:`repro.analysis.concurrency` reports through the
same three-layer escape hatch discipline, mirroring how production
linters stay honest at scale:

1. **Findings** are structured (:class:`Finding`): a stable code
   (``ASY101``, ``LCK201``, ...), a path, a line, the offending symbol
   and a human message.  Codes are stable across releases so baselines
   and suppressions survive refactors.
2. **Inline suppressions** -- a ``# conc: ok[CODE]`` comment on the
   flagged line (our ``# noqa``-equivalent) acquits exactly that line.
   A bare ``# conc: ok`` acquits every code on the line; both forms
   should carry a justification after the bracket, e.g.::

       self._bound[key] = (buf, prog)  # conc: ok[MVE301] cache pins buf

3. **The baseline file** (``baseline.txt`` next to this module) grand-
   fathers known findings by ``(code, path, symbol)`` -- line numbers
   deliberately excluded so unrelated edits do not churn it.  The
   baseline is *checked*: an entry matching nothing in the current
   tree is itself reported (``BASE001``), so the file can only shrink
   as violations are fixed, never silently rot.

``iter_modules`` applies the same seam-boundary rule the sim-seam AST
lint settled on: a seam entry ``"sim"`` exempts ``sim/...`` and
``sim.py`` but never a sibling like ``simulators/``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "parse_suppressions",
    "apply_suppressions",
    "load_baseline",
    "apply_baseline",
    "iter_modules",
    "seam_match",
    "project_root",
]

#: ``# conc: ok`` or ``# conc: ok[ASY101]`` or ``# conc: ok[ASY101,MVE301] why``
_SUPPRESS_RE = re.compile(
    r"#\s*conc:\s*ok(?:\[(?P<codes>[A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*)\])?"
)

#: baseline line: ``CODE<ws>path<ws>symbol  # justification``
_BASELINE_RE = re.compile(
    r"^(?P<code>[A-Z]{3,4}\d{3})\s+(?P<path>\S+)\s+(?P<symbol>\S+)"
    r"\s+#\s*(?P<why>.+)$"
)


@dataclass(frozen=True)
class Finding:
    """One concurrency-analysis violation."""

    code: str
    path: str
    line: int
    symbol: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} [{self.symbol}] {self.message}"

    @property
    def key(self) -> tuple[str, str, str]:
        """Line-independent identity used by the baseline."""
        return (self.code, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


def parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """Map line number -> suppressed codes (``None`` = all codes)."""
    out: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(c.strip() for c in codes.split(","))
    return out


def apply_suppressions(
    findings: list[Finding], source: str
) -> tuple[list[Finding], int]:
    """Drop findings acquitted by inline markers; returns (kept, n_dropped)."""
    marks = parse_suppressions(source)
    if not marks:
        return findings, 0
    kept: list[Finding] = []
    dropped = 0
    for f in findings:
        codes = marks.get(f.line, "absent")
        if codes == "absent" or (codes is not None and f.code not in codes):
            kept.append(f)
        else:
            dropped += 1
    return kept, dropped


def load_baseline(path: Path | None = None) -> dict[tuple[str, str, str], str]:
    """Parse the checked baseline into ``key -> justification``.

    Every non-comment line must match the ``CODE path symbol  # why``
    shape -- a malformed line raises, because a baseline that cannot
    be parsed must fail the build rather than silently accept nothing.
    """
    if path is None:
        path = Path(__file__).parent / "baseline.txt"
    entries: dict[tuple[str, str, str], str] = {}
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _BASELINE_RE.match(line)
        if m is None:
            raise ValueError(
                f"{path}:{lineno}: malformed baseline entry {line!r} "
                "(expected: CODE path symbol  # justification)"
            )
        entries[(m.group("code"), m.group("path"), m.group("symbol"))] = (
            m.group("why").strip()
        )
    return entries


def apply_baseline(
    findings: list[Finding],
    baseline: dict[tuple[str, str, str], str],
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined); flag stale baseline entries.

    A baseline entry that matched no finding comes back as a fresh
    ``BASE001`` finding in the *new* list -- the analyzer will not let
    the baseline keep paying for debts already repaid.
    """
    matched: set[tuple[str, str, str]] = set()
    new: list[Finding] = []
    old: list[Finding] = []
    for f in findings:
        if f.key in baseline:
            matched.add(f.key)
            old.append(f)
        else:
            new.append(f)
    for key in sorted(set(baseline) - matched):
        code, path, symbol = key
        new.append(Finding(
            "BASE001", path, 0, symbol,
            f"stale baseline entry for {code}: no matching finding remains -- "
            "delete the line (the violation was fixed)",
        ))
    return new, old


def project_root() -> Path:
    """Root of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).parent


def seam_match(rel: str, seam: str) -> bool:
    seam = seam.rstrip("/")
    return rel == seam or rel == f"{seam}.py" or rel.startswith(seam + "/")


def iter_modules(
    root: Path | None = None, *, seams: tuple[str, ...] = ()
):
    """Yield ``(rel_posix_path, source_text)`` for every module under
    ``root`` (default: the installed package), skipping exact seam
    subtrees -- never same-prefix siblings."""
    if root is None:
        root = project_root()
    root = Path(root)
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if any(seam_match(rel, seam) for seam in seams):
            continue
        yield rel, path.read_text(encoding="utf-8")
