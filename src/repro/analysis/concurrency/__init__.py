"""Concurrency & zero-copy aliasing analyzer.

Four whole-project static passes over the tree that the symbolic
schedule prover cannot see -- the *Python around the schedules*:

========  ====================================================
pass      question it answers
========  ====================================================
async     can any coroutine stall the event loop or strand a
          peer? (:mod:`.asynclint`, ``ASY1xx``)
locks     can two tasks deadlock on the asyncio lock web, or one
          task on itself? (:mod:`.lockgraph`, ``LCK2xx``)
views     can a borrowed memoryview outlive its loan or watch its
          buffer change mid-read? (:mod:`.viewescape`, ``MVE3xx``)
protocol  is the verb surface closed -- every caller handled,
          every handler called, every crash point swept?
          (:mod:`.protocol_model`, ``PRO4xx``)
========  ====================================================

All passes share one escape-hatch discipline (:mod:`.findings`):
inline ``# conc: ok[CODE] why`` suppressions and a checked
``baseline.txt`` whose stale entries fail the build (``BASE001``).
The static story is cross-checked at runtime by :mod:`.sanitizer`
(``REPRO_ALIAS_SANITIZER=1``), which fingerprints views at handoff and
re-verifies them after the transport drains -- a write the dataflow
missed surfaces as a hard failure in the differential/chaos fuzzers.

Entry point: :func:`run_concurrency_analysis`, wired into
``repro analyze --concurrency`` and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.concurrency.asynclint import (
    lint_async_project,
    lint_async_source,
)
from repro.analysis.concurrency.findings import (
    Finding,
    apply_baseline,
    load_baseline,
)
from repro.analysis.concurrency.lockgraph import (
    analyze_lock_order,
    analyze_lock_order_sources,
)
from repro.analysis.concurrency.protocol_model import check_protocol
from repro.analysis.concurrency.viewescape import (
    scan_views_project,
    scan_views_source,
)

__all__ = [
    "Finding",
    "ConcurrencyReport",
    "run_concurrency_analysis",
    "lint_async_source",
    "lint_async_project",
    "analyze_lock_order",
    "analyze_lock_order_sources",
    "scan_views_source",
    "scan_views_project",
    "check_protocol",
]

#: pass name -> runner; order is report order
_PASSES = ("async", "locks", "views", "protocol")


@dataclass
class ConcurrencyReport:
    """Outcome of one full four-pass run."""

    #: findings not covered by the baseline -- must be empty to pass
    findings: list[Finding] = field(default_factory=list)
    #: findings matched (and justified) by baseline entries
    baselined: list[Finding] = field(default_factory=list)
    #: raw per-pass finding counts, before baseline subtraction
    per_pass: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "baselined": [f.to_dict() for f in self.baselined],
            "per_pass": dict(self.per_pass),
        }


def run_concurrency_analysis(
    root: Path | None = None,
    *,
    tests_root: Path | None = None,
    baseline_path: Path | None = None,
) -> ConcurrencyReport:
    """Run all four passes and fold in the baseline.

    ``root`` defaults to the installed ``repro`` package; passes apply
    their own seams (``bench`` everywhere; ``analysis`` additionally for
    the view/protocol sweeps, which reason *about* buffers and verbs and
    would otherwise flag their own test vocabulary).
    """
    raw: dict[str, list[Finding]] = {
        "async": lint_async_project(root),
        "locks": analyze_lock_order(root),
        "views": scan_views_project(root),
        "protocol": check_protocol(root, tests_root),
    }
    all_findings = [f for name in _PASSES for f in raw[name]]
    baseline = load_baseline(baseline_path)
    new, old = apply_baseline(all_findings, baseline)
    return ConcurrencyReport(
        findings=sorted(new, key=lambda f: (f.path, f.line, f.code)),
        baselined=sorted(old, key=lambda f: (f.path, f.line, f.code)),
        per_pass={name: len(raw[name]) for name in _PASSES},
    )
