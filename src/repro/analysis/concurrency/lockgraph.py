"""Pass 2: lock-discipline analysis over the asyncio lock web.

PRs 5-6 grew a real lock hierarchy: the gateway's admission slots,
per-object name locks and per-stripe RMW locks; the cache is guarded by
the stripe lock; the cluster client layers retries on top.  Deadlock in
this world needs only two coroutines acquiring the same two locks in
opposite orders -- and no unit test will ever see it, because the
interleaving window is microseconds wide.

This pass builds the static **acquisition-order graph**:

* Every ``async with``/``with`` whose context expression looks like a
  lock (attribute or call whose terminal name matches the lock lexicon:
  ``*_lock``, ``*_locks[...]``, ``_admitted``, ``slot``, ``Lock()``,
  ``Semaphore()``...) records an acquisition labelled by its terminal
  name -- ``self._stripe_locks[s]`` and ``other._stripe_locks[t]``
  collapse to the same label ``_stripe_lock``, because two *instances*
  of the same lock class ordered inconsistently are exactly the hazard.
* Nested ``with`` blocks and multi-item ``with a, b:`` statements add
  edges ``a -> b`` ("a held while b acquired").
* Calls made while holding a lock propagate: if ``f`` holds ``A`` and
  calls ``g`` which acquires ``B``, the edge ``A -> B`` exists even
  though no single function shows it.  Call resolution is deliberately
  conservative -- ``self.x()`` resolves only within the defining class;
  a bare/attribute call resolves only when the method name is defined
  exactly once across the analyzed tree.  Unresolvable calls add no
  edges (a static pass must not invent deadlocks).

Findings:

* ``LCK200`` -- a cycle in the acquisition graph: two paths acquire
  the same locks in opposite orders; under contention this deadlocks.
* ``LCK201`` -- a function transitively re-acquires a lock label it
  already holds.  asyncio locks are **not re-entrant**: the second
  acquire waits forever on the first, a self-deadlock needing no
  second task at all.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.concurrency.findings import (
    Finding,
    apply_suppressions,
    iter_modules,
    parse_suppressions,
)

__all__ = ["analyze_lock_order", "analyze_lock_order_sources", "LockSummary"]

#: Terminal attribute/function names treated as lock acquisitions.
_LOCK_NAME_RE = re.compile(r"(^|_)locks?$|^_admitted$|^slot$")
#: Constructor names treated as inline lock acquisitions.
_LOCK_CTORS = frozenset({"Lock", "Semaphore", "BoundedSemaphore", "Condition"})


def _lock_label(ctx: ast.expr) -> str | None:
    """Label for a lock-looking context expression, else ``None``.

    ``self._stripe_locks[s]`` -> ``_stripe_lock`` (singularised so the
    dict-of-locks and a single lock of the same family share a node);
    ``self._admitted(op)`` -> ``_admitted``; ``admission.slot()`` ->
    ``slot``; ``asyncio.Lock()`` -> ``Lock``.
    """
    expr = ctx
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    name: str | None = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is None:
        return None
    if name in _LOCK_CTORS:
        return name
    if _LOCK_NAME_RE.search(name):
        return name[:-1] if name.endswith("locks") else name
    return None


@dataclass
class LockSummary:
    """Per-function lock behaviour, before call propagation."""

    qualname: str          # module-relative, e.g. ``ObjectGateway.put``
    path: str
    line: int
    cls: str | None        # defining class name, None at module scope
    acquires: list[tuple[str, int]] = field(default_factory=list)
    #: direct edges (held, acquired, lineno) observed in this body
    edges: list[tuple[str, str, int]] = field(default_factory=list)
    #: calls made while holding locks: (callee expr, held-set, lineno)
    calls_under: list[tuple[ast.expr, frozenset[str], int]] = field(
        default_factory=list
    )
    #: every call in the body regardless of held locks (for reachability)
    calls: list[tuple[ast.expr, int]] = field(default_factory=list)
    suppressed: dict[int, frozenset[str] | None] = field(default_factory=dict)


class _FunctionScanner(ast.NodeVisitor):
    """Collect acquisitions/edges/calls for a single function body."""

    def __init__(self, summary: LockSummary) -> None:
        self.s = summary
        self._held: list[str] = []

    def _acquire(self, label: str, lineno: int, body: list[ast.stmt]) -> None:
        for held in self._held:
            self.s.edges.append((held, label, lineno))
        self.s.acquires.append((label, lineno))
        self._held.append(label)
        for stmt in body:
            self.visit(stmt)
        self._held.pop()

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        labels = [(_lock_label(item.context_expr), item.context_expr)
                  for item in node.items]
        lock_labels = [lbl for lbl, _ in labels if lbl is not None]
        if not lock_labels:
            for stmt in node.body:
                self.visit(stmt)
            return
        # multi-item `with a, b:` orders left-to-right, like nesting
        lineno = node.lineno
        depth = 0
        for lbl in lock_labels:
            for held in self._held:
                self.s.edges.append((held, lbl, lineno))
            self.s.acquires.append((lbl, lineno))
            self._held.append(lbl)
            depth += 1
        for stmt in node.body:
            self.visit(stmt)
        for _ in range(depth):
            self._held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.s.calls.append((node.func, node.lineno))
        if self._held:
            self.s.calls_under.append(
                (node.func, frozenset(self._held), node.lineno)
            )
        self.generic_visit(node)

    # do not descend into nested function definitions: they run later
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _ModuleScanner(ast.NodeVisitor):
    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.suppressed = parse_suppressions(source)
        self.summaries: list[LockSummary] = []
        self._cls: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._cls.append(node.name)
        self.generic_visit(node)
        self._cls.pop()

    def _scan(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._cls[-1] if self._cls else None
        qual = f"{cls}.{node.name}" if cls else node.name
        summary = LockSummary(
            qualname=qual, path=self.path, line=node.lineno, cls=cls,
            suppressed=self.suppressed,
        )
        scanner = _FunctionScanner(summary)
        for stmt in node.body:
            scanner.visit(stmt)
        self.summaries.append(summary)
        # nested defs still get their own summaries
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan(node)


def _callee_key(expr: ast.expr) -> tuple[str, str] | None:
    """Resolve a call target to (kind, name).

    kind ``"self"``: ``self.x()`` -- resolve within the defining class.
    kind ``"name"``: ``x()`` or ``obj.x()`` -- resolve only if the name
    is unambiguous across all summaries.
    """
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return ("self", expr.attr)
        return ("name", expr.attr)
    if isinstance(expr, ast.Name):
        return ("name", expr.id)
    return None


def _build_index(
    summaries: list[LockSummary],
) -> tuple[dict[tuple[str, str, str], LockSummary], dict[str, list[LockSummary]]]:
    by_class: dict[tuple[str, str, str], LockSummary] = {}
    by_name: dict[str, list[LockSummary]] = {}
    for s in summaries:
        name = s.qualname.rsplit(".", 1)[-1]
        if s.cls is not None:
            by_class[(s.path, s.cls, name)] = s
        by_name.setdefault(name, []).append(s)
    return by_class, by_name


def _resolve(
    s: LockSummary,
    expr: ast.expr,
    by_class: dict[tuple[str, str, str], LockSummary],
    by_name: dict[str, list[LockSummary]],
) -> LockSummary | None:
    key = _callee_key(expr)
    if key is None:
        return None
    kind, name = key
    if kind == "self" and s.cls is not None:
        return by_class.get((s.path, s.cls, name))
    candidates = by_name.get(name, [])
    if len(candidates) == 1:
        return candidates[0]
    return None


def _transitive_acquires(
    start: LockSummary,
    by_class: dict[tuple[str, str, str], LockSummary],
    by_name: dict[str, list[LockSummary]],
    cache: dict[int, frozenset[str]],
    stack: set[int],
) -> frozenset[str]:
    """Every lock label ``start`` may acquire, directly or via calls."""
    sid = id(start)
    if sid in cache:
        return cache[sid]
    if sid in stack:
        return frozenset()
    stack.add(sid)
    labels = {lbl for lbl, _ in start.acquires}
    for expr, _lineno in start.calls:
        callee = _resolve(start, expr, by_class, by_name)
        if callee is not None:
            labels |= _transitive_acquires(callee, by_class, by_name, cache, stack)
    stack.discard(sid)
    cache[sid] = frozenset(labels)
    return cache[sid]


def _find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """All elementary cycles found by DFS (deduped by node-set)."""
    cycles: list[list[str]] = []
    seen_sets: set[frozenset[str]] = set()

    def dfs(node: str, path: list[str], on_path: set[str]) -> None:
        for nxt in sorted(edges.get(node, ())):
            if nxt in on_path:
                cyc = path[path.index(nxt):] + [nxt]
                key = frozenset(cyc)
                if key not in seen_sets:
                    seen_sets.add(key)
                    cycles.append(cyc)
                continue
            path.append(nxt)
            on_path.add(nxt)
            dfs(nxt, path, on_path)
            on_path.discard(nxt)
            path.pop()

    for start in sorted(edges):
        dfs(start, [start], {start})
    return cycles


def analyze_lock_order_sources(
    modules: list[tuple[str, str]],
) -> list[Finding]:
    """Run the lock-discipline analysis over ``(path, source)`` pairs."""
    summaries: list[LockSummary] = []
    per_path_source = dict(modules)
    for path, source in modules:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [Finding("LCK199", path, exc.lineno or 0, "syntax", str(exc.msg))]
        scanner = _ModuleScanner(path, source)
        scanner.visit(tree)
        summaries.extend(scanner.summaries)

    by_class, by_name = _build_index(summaries)
    cache: dict[int, frozenset[str]] = {}

    # -- global acquisition-order graph --------------------------------------
    edges: dict[str, set[str]] = {}
    witnesses: dict[tuple[str, str], tuple[str, str, int]] = {}

    def add_edge(a: str, b: str, s: LockSummary, lineno: int) -> None:
        if a == b:
            return  # self-edges are LCK201's business, with re-entry proof
        edges.setdefault(a, set()).add(b)
        witnesses.setdefault((a, b), (s.path, s.qualname, lineno))

    findings: list[Finding] = []
    for s in summaries:
        for a, b, lineno in s.edges:
            add_edge(a, b, s, lineno)
        for expr, held, lineno in s.calls_under:
            callee = _resolve(s, expr, by_class, by_name)
            if callee is None:
                continue
            acquired = _transitive_acquires(callee, by_class, by_name, cache, set())
            for a in held:
                for b in acquired:
                    if a != b:
                        add_edge(a, b, s, lineno)
                    else:
                        # transitive re-acquisition of a held, non-reentrant lock
                        findings.append(Finding(
                            "LCK201", s.path, lineno, a,
                            f"{s.qualname} holds {a!r} and calls into a path "
                            f"that re-acquires it; asyncio locks are not "
                            f"re-entrant -- this self-deadlocks",
                        ))

    for cyc in _find_cycles(edges):
        pairs = list(zip(cyc, cyc[1:]))
        where = "; ".join(
            f"{a}->{b} at {witnesses[(a, b)][0]}:{witnesses[(a, b)][2]} "
            f"({witnesses[(a, b)][1]})"
            for a, b in pairs if (a, b) in witnesses
        )
        path, qual, lineno = witnesses.get(pairs[0], ("<graph>", "<multiple>", 0))
        findings.append(Finding(
            "LCK200", path, lineno, "->".join(cyc),
            f"lock acquisition-order cycle: {' -> '.join(cyc)} ({where}); "
            f"two tasks taking these locks in opposite orders deadlock",
        ))

    # apply inline suppressions per finding's source module
    kept: list[Finding] = []
    for f in findings:
        src = per_path_source.get(f.path)
        if src is None:
            kept.append(f)
            continue
        filtered, _ = apply_suppressions([f], src)
        kept.extend(filtered)
    return kept


def analyze_lock_order(root=None, *, seams: tuple[str, ...] = ("bench",)) -> list[Finding]:
    """Analyze the whole tree (default: the installed package)."""
    modules = list(iter_modules(root, seams=seams))
    return analyze_lock_order_sources(modules)
