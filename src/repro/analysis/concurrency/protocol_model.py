"""Pass 4: protocol exhaustiveness — verbs, handlers, and crash points.

The cluster protocol is stringly-typed by design (verbs ride the frame
header as JSON), which keeps the wire simple and makes the compiler
useless: nothing stops a client shipping ``"scrubread"`` to a node that
only knows ``"scrub-read"``, or a handler rotting caller-less after a
refactor, or a brand-new 2PC crash point that no crash-sweep test ever
arms.  This pass rebuilds the protocol model from the AST and proves it
closed:

* **handlers** -- string literals compared against the dispatch
  variable inside the node's ``_serve``/``_dispatch`` path
  (``if verb == "put":``), plus membership tests against literal
  tuples/sets of verbs.
* **callers** -- first-argument string literals of ``.request(...)``
  and second-argument literals of ``send_verb(...)``,
  ``_column_request(...)`` and ``_rpc(...)``, collected across the
  whole source tree (and the test tree, for handler-liveness: some
  verbs -- ``fault`` -- exist *for* the harness).
* **crash points** -- the ``NodeCrashPlan.POINTS`` tuple, cross-checked
  against every string literal in ``tests/``: a declared crash point
  that no test arms is an untested protocol state transition.

Findings:

* ``PRO401`` -- a production caller sends a verb no handler accepts:
  a guaranteed ``bad-verb`` error at runtime.
* ``PRO402`` -- a handler accepts a verb nothing (src *or* tests)
  sends: dead protocol surface, or a caller lost in a refactor.
* ``PRO403`` -- a declared crash point never exercised by the test
  tree: the 2PC sweep has a blind spot exactly one crash wide.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.concurrency.findings import (
    Finding,
    apply_suppressions,
    iter_modules,
    project_root,
)

__all__ = [
    "extract_handled_verbs",
    "extract_caller_verbs",
    "extract_crash_points",
    "check_protocol",
]

#: Call shapes whose Nth positional argument is a verb literal.
_VERB_ARG_INDEX = {
    "request": 0,         # client.request("get", ...)
    "send_verb": 1,       # send_verb(address, "stats", ...)
    "_column_request": 1, # array._column_request(col, "get", ...)
    "_rpc": 1,            # writer._rpc(col, "prepare", ...)
}

#: Internal marker replies, not protocol verbs a caller could send.
_NON_VERBS = frozenset({"bad-verb"})


def _str_const(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


def extract_handled_verbs(source: str, path: str = "node.py") -> dict[str, int]:
    """Verb literals the node dispatch accepts, with their lines.

    Matches ``verb == "x"`` / ``"x" == verb`` comparisons and
    ``verb in ("x", "y")`` membership over literal containers, inside
    any function whose name contains ``serve`` or ``dispatch``.  The
    compared name must be a **parameter** of that function -- that is
    what makes it the dispatch variable; comparisons against locals
    (``state == "committed"`` inside a handler) are protocol *payload*,
    not protocol *surface*, and counting them would fabricate phantom
    verbs.  The parameter's spelling is deliberately not hardcoded to
    ``verb``, so a rename does not blind the pass.
    """
    tree = ast.parse(source, filename=path)
    verbs: dict[str, int] = {}
    for fn in ast.walk(tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if "serve" not in fn.name and "dispatch" not in fn.name:
            continue
        params = {
            a.arg
            for a in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs)
            if a.arg != "self"
        }
        for node in ast.walk(fn):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            op = node.ops[0]
            left, right = node.left, node.comparators[0]
            if isinstance(op, ast.Eq):
                lit = _str_const(right) or _str_const(left)
                other = left if _str_const(right) else right
                if (
                    lit is not None
                    and isinstance(other, ast.Name)
                    and other.id in params
                ):
                    verbs.setdefault(lit, node.lineno)
            elif (
                isinstance(op, ast.In)
                and isinstance(left, ast.Name)
                and left.id in params
                and isinstance(right, (ast.Tuple, ast.List, ast.Set))
            ):
                for elt in right.elts:
                    lit = _str_const(elt)
                    if lit is not None:
                        verbs.setdefault(lit, elt.lineno)
    return verbs


def extract_caller_verbs(
    modules: list[tuple[str, str]],
) -> dict[str, list[tuple[str, int]]]:
    """Verb literals sent by callers: verb -> [(path, line), ...]."""
    sent: dict[str, list[tuple[str, int]]] = {}
    for path, source in modules:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif isinstance(node.func, ast.Name):
                name = node.func.id
            idx = _VERB_ARG_INDEX.get(name or "")
            if idx is None or len(node.args) <= idx:
                continue
            verb = _str_const(node.args[idx])
            if verb is not None:
                sent.setdefault(verb, []).append((path, node.lineno))
    return sent


def extract_crash_points(source: str, path: str = "node.py") -> list[str]:
    """The ``POINTS`` tuple of the crash plan class, in declared order."""
    tree = ast.parse(source, filename=path)
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef) or "CrashPlan" not in cls.name:
            continue
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "POINTS"
                    for t in stmt.targets
                )
                and isinstance(stmt.value, (ast.Tuple, ast.List))
            ):
                return [
                    v for v in (_str_const(e) for e in stmt.value.elts)
                    if v is not None
                ]
    return []


def _string_literals(modules: list[tuple[str, str]]) -> set[str]:
    out: set[str] = set()
    for path, source in modules:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            lit = _str_const(node) if isinstance(node, ast.expr) else None
            if lit is not None:
                out.add(lit)
    return out


def _tests_root(src_root: Path) -> Path | None:
    """Locate the repo's ``tests/`` tree relative to the package root."""
    for candidate in (
        src_root.parent.parent / "tests",  # src/repro -> repo/tests
        src_root.parent / "tests",
    ):
        if candidate.is_dir():
            return candidate
    return None


def check_protocol(
    root: Path | None = None,
    tests_root: Path | None = None,
) -> list[Finding]:
    """Run the full protocol exhaustiveness check.

    ``root`` defaults to the installed ``repro`` package; ``tests_root``
    defaults to the sibling ``tests/`` directory when one exists (absent
    in installed-wheel contexts, where PRO402/PRO403 degrade gracefully
    to src-only evidence).
    """
    if root is None:
        root = project_root()
    root = Path(root)
    node_path = root / "cluster" / "node.py"
    if not node_path.exists():
        return [Finding(
            "PRO400", "cluster/node.py", 0, "missing",
            "node module not found; protocol model cannot be built",
        )]
    node_source = node_path.read_text(encoding="utf-8")
    handled = extract_handled_verbs(node_source, "cluster/node.py")

    src_modules = list(iter_modules(root, seams=("bench", "analysis")))
    src_callers = extract_caller_verbs(src_modules)

    if tests_root is None:
        tests_root = _tests_root(root)
    test_modules: list[tuple[str, str]] = []
    if tests_root is not None and tests_root.is_dir():
        test_modules = [
            (p.relative_to(tests_root).as_posix(), p.read_text(encoding="utf-8"))
            for p in sorted(tests_root.rglob("*.py"))
        ]
    test_callers = extract_caller_verbs(test_modules)

    findings: list[Finding] = []

    # PRO401: a production caller sends an unhandled verb.
    for verb in sorted(src_callers):
        if verb not in handled and verb not in _NON_VERBS:
            path, line = src_callers[verb][0]
            findings.append(Finding(
                "PRO401", path, line, verb,
                f"caller sends verb {verb!r} but the node dispatch has no "
                f"handler for it -- this request can only come back bad-verb",
            ))

    # PRO402: a handler nothing sends (src or tests).
    for verb in sorted(handled):
        if verb in _NON_VERBS:
            continue
        if verb not in src_callers and verb not in test_callers:
            findings.append(Finding(
                "PRO402", "cluster/node.py", handled[verb], verb,
                f"handler for verb {verb!r} has no caller anywhere in src or "
                f"tests -- dead protocol surface or a refactor casualty",
            ))

    # PRO403: a declared crash point no test arms.
    points = extract_crash_points(node_source, "cluster/node.py")
    test_literals = _string_literals(test_modules)
    for point in points:
        if point not in test_literals:
            findings.append(Finding(
                "PRO403", "cluster/node.py", 0, point,
                f"crash point {point!r} is declared in NodeCrashPlan.POINTS "
                f"but never appears in the test tree -- the 2PC crash sweep "
                f"has a blind spot here",
            ))

    # inline suppressions live in node.py; apply them only to findings
    # anchored there (caller-side findings keep their own line numbers
    # in other files and must not collide with node.py's markers)
    node_anchored = [f for f in findings if f.path == "cluster/node.py"]
    others = [f for f in findings if f.path != "cluster/node.py"]
    kept, _ = apply_suppressions(node_anchored, node_source)
    return sorted(kept + others, key=lambda f: (f.path, f.line, f.code))
