"""Runtime alias sanitizer for the zero-copy wire path.

Static escape analysis (:mod:`.viewescape`) sees assignments; it cannot
see a second task mutating a buffer *while* the transport is draining a
view of it.  This module is the dynamic half of the bargain, switched
on by ``REPRO_ALIAS_SANITIZER=1`` (or :func:`enable` in tests):

* :func:`guard` fingerprints a payload view (CRC-32 over the flat
  bytes) at the moment it is handed to the transport;
* :func:`check` re-fingerprints after ``drain()`` returns -- a mismatch
  means some writer raced the wire and is recorded as an
  :class:`AliasEvent`;
* :func:`readonly_words` hardens ``words_view``'s loans: under the
  sanitizer, borrowed word views come back non-writable, so a miswired
  schedule that tries to XOR *into* a borrowed wire buffer raises
  immediately instead of corrupting a peer's strip.

Events accumulate in a process-global list; the differential and chaos
fuzzers call :func:`assert_clean` after every case, turning a single
write-after-handoff anywhere in a fuzz run into a hard failure.  The
contract with the static passes is deliberately one-sided: anything the
sanitizer catches at runtime is by definition a finding the dataflow
missed, so CI treats a non-empty event list as a build failure, keeping
the analyzer honest.

Disabled (the default), every entry point is a constant-time no-op --
``guard`` returns ``None`` before touching the payload -- so the hot
path pays one branch, mirroring the tracer's disabled-path discipline.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ENV_FLAG",
    "AliasEvent",
    "AliasViolationError",
    "enabled",
    "enable",
    "guard",
    "check",
    "events",
    "clear_events",
    "assert_clean",
    "readonly_words",
]

ENV_FLAG = "REPRO_ALIAS_SANITIZER"

#: test override: None = follow the environment, bool = forced
_forced: bool | None = None

_events: list["AliasEvent"] = []


@dataclass(frozen=True)
class AliasEvent:
    """One observed write-after-handoff."""

    site: str          # where the view was handed off, e.g. "protocol.write_frame"
    nbytes: int
    crc_before: int
    crc_after: int

    def __str__(self) -> str:
        return (
            f"write-after-handoff at {self.site}: {self.nbytes} B view "
            f"changed under the transport "
            f"(crc {self.crc_before:#010x} -> {self.crc_after:#010x})"
        )


class AliasViolationError(RuntimeError):
    """Raised by :func:`assert_clean` when events were recorded."""


class _Token:
    """A guarded view plus its handoff-time fingerprint."""

    __slots__ = ("site", "view", "crc")

    def __init__(self, site: str, view: memoryview, crc: int) -> None:
        self.site = site
        self.view = view
        self.crc = crc


def enabled() -> bool:
    """Is the sanitizer active (env flag or test override)?"""
    if _forced is not None:
        return _forced
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "", "0", "false", "no",
    )


def enable(on: bool | None = True) -> None:
    """Force the sanitizer on/off for tests; ``None`` re-follows the env."""
    global _forced
    _forced = on


def guard(payload, site: str) -> _Token | None:
    """Fingerprint ``payload`` at handoff; returns a token for :func:`check`.

    ``bytes`` payloads are immutable and skipped outright -- only
    buffers someone *could* write (memoryviews, bytearrays, numpy
    ``.data``) are worth the CRC.
    """
    if not enabled() or isinstance(payload, bytes) or payload is None:
        return None
    try:
        view = memoryview(payload)
    except TypeError:
        return None
    if view.readonly:
        return None
    flat = view.cast("B") if view.ndim != 1 or view.format != "B" else view
    return _Token(site, flat, zlib.crc32(flat))


def check(token: _Token | None) -> AliasEvent | None:
    """Re-fingerprint a guarded view; record and return a mismatch."""
    if token is None:
        return None
    crc_after = zlib.crc32(token.view)
    if crc_after == token.crc:
        return None
    event = AliasEvent(token.site, len(token.view), token.crc, crc_after)
    _events.append(event)
    return event


def events() -> tuple[AliasEvent, ...]:
    """Every event recorded since the last :func:`clear_events`."""
    return tuple(_events)


def clear_events() -> None:
    _events.clear()


def assert_clean(context: str = "") -> None:
    """Raise :class:`AliasViolationError` if any event was recorded.

    The fuzzers call this after every case; the raised message carries
    each event so a failing nightly run is diagnosable from the log
    alone.  Events are consumed (cleared) on raise so shrinking reruns
    start from a clean slate.
    """
    if not _events:
        return
    count = len(_events)
    lines = "\n  ".join(str(e) for e in _events)
    clear_events()
    where = f" during {context}" if context else ""
    raise AliasViolationError(
        f"alias sanitizer recorded {count} "
        f"write-after-handoff event(s){where}:\n  {lines}"
    )


def readonly_words(arr: np.ndarray) -> np.ndarray:
    """Under the sanitizer, loaned word views come back non-writable.

    A borrowed wire buffer is an XOR *source*; a schedule that writes
    into one is miswired and should fail at the write, not when a peer
    decodes garbage.  No-op (returns ``arr`` unchanged) when disabled.
    """
    if not enabled() or not arr.flags.writeable:
        return arr
    view = arr.view()
    view.flags.writeable = False
    return view
