"""Pass 1: async-safety lint over the project's coroutine code.

An asyncio data plane has exactly one thread of execution; a blocking
call inside a coroutine stalls every request in flight -- the cluster's
heartbeats miss, breakers trip, deadlines blow, and none of it shows up
in unit tests that never run two requests at once.  This pass walks
every ``async def`` in the tree and flags:

* ``ASY101`` -- a blocking sleep (``time.sleep``) inside a coroutine;
  the event loop stalls for the whole duration.  Use
  ``await clock.sleep(...)`` through the injectable sim clock.
* ``ASY102`` -- synchronous file/socket I/O inside a coroutine:
  ``open()``, ``pathlib`` read/write helpers, ``socket.socket``.
  One slow disk or peer freezes the loop.
* ``ASY103`` -- ``.result()`` on a future inside a coroutine.
  ``concurrent.futures.Future.result`` *blocks*; asyncio tasks raise
  ``InvalidStateError`` unless already done.  The call is acquitted
  when the same function visibly guards it with ``x.done()`` on the
  same receiver (the hedged-request pattern) -- that is the one shape
  where ``.result()`` is both safe and idiomatic.
* ``ASY104`` -- an unawaited coroutine call used as a bare statement:
  the coroutine object is created, never scheduled, and the work
  silently does not happen.  Only calls that resolve to ``async def``
  functions *defined in the same module* are flagged (zero guessing
  about third-party return types).
* ``ASY105`` -- ``await`` while holding a **synchronous** lock
  (``with threading.Lock(): ... await ...``).  The lock is held across
  a suspension point, so any other task -- or thread -- that needs it
  deadlocks against a coroutine that may never be resumed.

The pass is wall-clock-adjacent to the sim-seam AST lint but answers a
different question: not "is time injectable" but "can this coroutine
stall the loop or strand a peer".
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency.findings import (
    Finding,
    apply_suppressions,
    iter_modules,
)

__all__ = ["ASYNC_SEAMS", "lint_async_source", "lint_async_project"]

#: ``repro.bench`` owns wall-clock measurement and runs no event loop
#: of consequence; everything else is swept, the sim included (its
#: transports host the same coroutines production runs).
ASYNC_SEAMS: tuple[str, ...] = ("bench",)

#: Blocking calls by resolved dotted name.
_BLOCKING_SLEEPS = frozenset({"time.sleep"})
_BLOCKING_IO_CALLS = frozenset({"open", "socket.socket", "socket.create_connection"})
#: Blocking method names on any receiver (pathlib and file objects).
_BLOCKING_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)
#: Sync-lock constructors whose ``with`` must not span an ``await``.
_SYNC_LOCKS = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition",
     "threading.Semaphore", "threading.BoundedSemaphore", "multiprocessing.Lock"}
)


def _qualname(expr: ast.expr, aliases: dict[str, str]) -> str | None:
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if not isinstance(expr, ast.Name):
        return None
    parts.append(aliases.get(expr.id, expr.id))
    return ".".join(reversed(parts))


def _receiver_name(expr: ast.expr) -> str | None:
    """``x.result()`` -> ``x``; ``self.a.result()`` -> ``self.a``."""
    if isinstance(expr, ast.Attribute):
        try:
            return ast.unparse(expr.value)
        except Exception:  # pragma: no cover - unparse is total on exprs
            return None
    return None


class _AsyncVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []
        self.aliases: dict[str, str] = {}
        #: names of ``async def`` functions/methods defined in this module
        self.local_async: set[str] = set()
        self._async_depth = 0

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- function context ----------------------------------------------------

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.local_async.add(node.name)
        self._async_depth += 1
        self._done_guarded = getattr(self, "_done_guarded", set())
        saved = self._done_guarded
        self._done_guarded = _done_receivers(node)
        try:
            self.generic_visit(node)
        finally:
            self._done_guarded = saved
            self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A sync def nested in an async def is its own (non-async) world.
        depth, self._async_depth = self._async_depth, 0
        try:
            self.generic_visit(node)
        finally:
            self._async_depth = depth

    # -- checks --------------------------------------------------------------

    def _flag(self, node: ast.AST, code: str, symbol: str, message: str) -> None:
        self.findings.append(
            Finding(code, self.path, getattr(node, "lineno", 0), symbol, message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth:
            full = _qualname(node.func, self.aliases)
            if full in _BLOCKING_SLEEPS:
                self._flag(
                    node, "ASY101", full,
                    "blocking sleep inside a coroutine stalls the event loop; "
                    "await the injectable clock's sleep instead",
                )
            elif full in _BLOCKING_IO_CALLS:
                self._flag(
                    node, "ASY102", full,
                    "synchronous I/O inside a coroutine blocks every task in "
                    "flight; move it off the loop or behind an executor",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_IO_METHODS
            ):
                self._flag(
                    node, "ASY102", node.func.attr,
                    "synchronous file I/O inside a coroutine blocks the event "
                    "loop; move it off the loop or behind an executor",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
                and not node.args
                and not node.keywords
            ):
                recv = _receiver_name(node.func)
                if recv is None or recv not in getattr(self, "_done_guarded", set()):
                    self._flag(
                        node, "ASY103", f"{recv or '?'}.result",
                        "future.result() blocks (or raises) inside a coroutine; "
                        "await the future, or guard with .done() first",
                    )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # A bare `self.coro()` / `coro()` statement: created, never awaited.
        call = node.value
        if self._async_depth and isinstance(call, ast.Call):
            name = None
            if isinstance(call.func, ast.Name):
                name = call.func.id
            elif isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ) and call.func.value.id == "self":
                name = call.func.attr
            if name in self.local_async:
                self._flag(
                    node, "ASY104", name,
                    "coroutine called but never awaited: the call builds a "
                    "coroutine object and drops it -- the work does not run",
                )
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if self._async_depth:
            for item in node.items:
                ctx = item.context_expr
                target = ctx.func if isinstance(ctx, ast.Call) else ctx
                full = _qualname(target, self.aliases)
                if full in _SYNC_LOCKS and _contains_await(node.body):
                    self._flag(
                        node, "ASY105", full,
                        "await while holding a synchronous lock: the lock is "
                        "held across a suspension point, deadlocking any other "
                        "task or thread that needs it",
                    )
        self.generic_visit(node)


def _contains_await(body: list[ast.stmt]) -> bool:
    """Any Await in these statements, not crossing function boundaries."""
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(sub, ast.Await):
                return True
    return False


def _done_receivers(func: ast.AsyncFunctionDef) -> set[str]:
    """Receivers with a visible ``.done()`` call anywhere in ``func``."""
    guarded: set[str] = set()
    for sub in ast.walk(func):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "done"
        ):
            recv = _receiver_name(sub.func)
            if recv is not None:
                guarded.add(recv)
    return guarded


def lint_async_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source; inline suppressions applied."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("ASY100", path, exc.lineno or 0, "syntax", str(exc.msg))]
    visitor = _AsyncVisitor(path)
    visitor.visit(tree)
    kept, _ = apply_suppressions(visitor.findings, source)
    return kept


def lint_async_project(root=None, *, seams: tuple[str, ...] = ASYNC_SEAMS) -> list[Finding]:
    """Lint every module under ``root`` (default: installed package)."""
    findings: list[Finding] = []
    for rel, source in iter_modules(root, seams=seams):
        findings.extend(lint_async_source(source, rel))
    return findings
