"""repro -- Optimal encoding/decoding for RAID-6 Liberation codes.

A from-scratch Python reproduction of

    Huang, Jiang, Shen, Che, Xiao, Li:
    "Optimal Encoding and Decoding Algorithms for the RAID-6
    Liberation Codes", IPDPS 2020.

Quick start::

    from repro import LiberationOptimal

    code = LiberationOptimal(k=6)          # 6 data disks + P + Q
    stripe = code.alloc_stripe()
    stripe[:6] = ...                        # your data, uint64 words
    code.encode(stripe)                     # fills P and Q
    stripe[1] = 0; stripe[4] = 0            # lose two disks
    code.decode(stripe, erasures=[1, 4])    # bit-perfect recovery

Packages:

* :mod:`repro.core` -- the paper's Algorithms 1-4, the geometric
  presentation, and single-column error correction.
* :mod:`repro.codes` -- the code zoo: Liberation (optimal & original
  bit-matrix baseline), EVENODD, RDP, Reed-Solomon.
* :mod:`repro.bitmatrix` -- the Jerasure-style bit-matrix substrate.
* :mod:`repro.engine` -- XOR schedules and their executors.
* :mod:`repro.array` -- a RAID-6 array simulator (disks, stripes,
  degraded I/O, rebuild, scrubbing, fault injection).
* :mod:`repro.cluster` -- the distributed stripe store: asyncio strip
  nodes, degraded reads over the network, background rebuild, metrics.
* :mod:`repro.bench` -- harness regenerating the paper's tables/figures.
"""

from repro.codes import (
    RAID6Code,
    XorScheduleCode,
    LiberationCode,
    LiberationOptimal,
    LiberationOriginal,
    EvenOddCode,
    RDPCode,
    ReedSolomonCode,
    make_code,
    available_codes,
)
from repro.core import (
    LiberationGeometry,
    encode_schedule,
    decode_schedule,
    locate_and_correct,
    ScanResult,
    ScanStatus,
)
from repro.engine import Schedule, XorOp
from repro.array import RAID6Array, Scrubber, FaultInjector
from repro.parallel import BatchCoder, alloc_batch
from repro.cluster import (
    ClusterArray,
    LocalCluster,
    RebuildScheduler,
    RetryPolicy,
    StripNode,
)

__version__ = "1.0.0"

__all__ = [
    "RAID6Code",
    "XorScheduleCode",
    "LiberationCode",
    "LiberationOptimal",
    "LiberationOriginal",
    "EvenOddCode",
    "RDPCode",
    "ReedSolomonCode",
    "make_code",
    "available_codes",
    "LiberationGeometry",
    "encode_schedule",
    "decode_schedule",
    "locate_and_correct",
    "ScanResult",
    "ScanStatus",
    "Schedule",
    "XorOp",
    "RAID6Array",
    "Scrubber",
    "FaultInjector",
    "BatchCoder",
    "alloc_batch",
    "ClusterArray",
    "LocalCluster",
    "RebuildScheduler",
    "RetryPolicy",
    "StripNode",
    "__version__",
]
