"""RAID-6 array simulator (paper §II substrate).

Stripes, strips and elements laid out over simulated disks with
rotating parity; full-stripe and read-modify-write small-write paths;
degraded reads, rebuild, fault injection and scrubbing.
"""

from repro.array.disk import (
    DiskError,
    DiskFailedError,
    LatentSectorError,
    DiskStats,
    SimulatedDisk,
)
from repro.array.layout import Address, DeclusteredLayout, StripeLayout
from repro.array.raid6 import ArrayDegradedError, ArrayStats, RAID6Array
from repro.array.scrub import ScrubReport, Scrubber
from repro.array.faults import FaultInjector, InjectionLog
from repro.array.journal import (
    CrashPoint,
    JournaledRAID6Array,
    JournalRecord,
    SimulatedCrash,
    StripeJournal,
)
from repro.array.replay import ReplayStats, TraceOp, parse_trace, replay, synthesize_trace
from repro.array import workloads

__all__ = [
    "DiskError",
    "DiskFailedError",
    "LatentSectorError",
    "DiskStats",
    "SimulatedDisk",
    "Address",
    "StripeLayout",
    "DeclusteredLayout",
    "ArrayDegradedError",
    "ArrayStats",
    "RAID6Array",
    "ScrubReport",
    "Scrubber",
    "FaultInjector",
    "InjectionLog",
    "CrashPoint",
    "JournaledRAID6Array",
    "JournalRecord",
    "SimulatedCrash",
    "StripeJournal",
    "ReplayStats",
    "TraceOp",
    "parse_trace",
    "replay",
    "synthesize_trace",
    "workloads",
]
