"""Background scrubbing against silent data corruption.

The scrubber walks every stripe, checks parity consistency, and -- for
Liberation arrays -- uses the paper's single-column error-correction
procedure (:mod:`repro.core.error_correction`) to locate and repair a
corrupted strip without any hint from the disks.  Codes without a
locator fall back to detect-only reporting.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.array.raid6 import RAID6Array
from repro.codes.liberation import LiberationCode
from repro.core.error_correction import ScanStatus, locate_and_correct

__all__ = ["ScrubReport", "Scrubber"]

logger = logging.getLogger(__name__)


@dataclass
class ScrubReport:
    """Aggregate outcome of one scrub pass."""

    stripes_scanned: int = 0
    stripes_clean: int = 0
    stripes_corrected: int = 0
    stripes_uncorrectable: int = 0
    #: True when the array's code has no single-column locator, so the
    #: pass could only *detect* corruption: every parity mismatch is
    #: counted under ``stripes_uncorrectable`` without a repair attempt.
    detect_only_fallback: bool = False
    corrected: list[tuple[int, int]] = field(default_factory=list)  # (stripe, column)
    uncorrectable: list[int] = field(default_factory=list)  # stripe ids

    @property
    def healthy(self) -> bool:
        return self.stripes_uncorrectable == 0


class Scrubber:
    """Scrubs a :class:`~repro.array.raid6.RAID6Array` in place."""

    def __init__(self, array: RAID6Array) -> None:
        self.array = array
        code = array.code
        self._can_locate = isinstance(code, LiberationCode)
        if not self._can_locate:
            logger.warning(
                "code %r has no single-column error locator; scrub passes "
                "will detect corruption but cannot repair it",
                code.name,
            )

    def scrub(self, *, repair: bool = True) -> ScrubReport:
        """One full pass over all stripes.

        With ``repair`` (default), corrupted strips located by the
        Liberation error-correction procedure are rewritten; without
        it (or for codes lacking a locator) corruption is only counted.
        """
        arr, code = self.array, self.array.code
        report = ScrubReport(detect_only_fallback=not self._can_locate)
        for stripe in range(arr.layout.n_stripes):
            buf = arr.read_stripe(stripe)
            report.stripes_scanned += 1
            if code.verify(buf):
                report.stripes_clean += 1
                continue
            if not (self._can_locate and repair):
                report.stripes_uncorrectable += 1
                report.uncorrectable.append(stripe)
                continue
            result = locate_and_correct(code.geometry, buf)
            if result.status is ScanStatus.CORRECTED:
                arr.write_stripe(stripe, buf, columns=[result.column])
                report.stripes_corrected += 1
                report.corrected.append((stripe, result.column))
            else:
                report.stripes_uncorrectable += 1
                report.uncorrectable.append(stripe)
        return report
