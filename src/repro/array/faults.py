"""Fault-injection campaigns.

Thin orchestration over the per-disk fault hooks: deterministic,
seedable scenarios used by the examples and the failure-injection
tests (double failures during rebuild, latent errors surfacing during
recovery -- the §I motivation for RAID-6 -- and silent corruption for
the scrubber).

:class:`NetworkFaultPlan` extends the same vocabulary to the
*distributed* array (:mod:`repro.cluster`): instead of a disk
misbehaving, a node's network service does -- added latency, dropped
connections mid-frame, corrupted frames, transient I/O errors.  The
plan is a plain dataclass so tests can install it directly on an
in-process :class:`~repro.cluster.node.StripNode` or ship it over the
wire via the ``fault`` verb.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.array.raid6 import RAID6Array

__all__ = ["ALWAYS", "FaultInjector", "InjectionLog", "NetworkFaultPlan"]

#: Sentinel count meaning "every request", forever.
ALWAYS = -1


@dataclass
class NetworkFaultPlan:
    """Injectable misbehaviour of one node's data plane.

    Counted fields are budgets: ``0`` disables the fault, ``n > 0``
    applies it to the next ``n`` data requests, :data:`ALWAYS` (-1)
    applies it unconditionally.  Control verbs (``stats``, ``fault``,
    ``shutdown``) are never faulted, so an operator can always reach a
    sick node.
    """

    #: seconds of artificial service delay per data request
    latency: float = 0.0
    #: how many data requests the latency applies to: ``0`` means every
    #: one (the historical behaviour), ``n > 0`` only the next ``n``
    #: (a transient slow spell -- what hedged reads are for)
    slow_requests: int = 0
    #: reply with an ``io-error`` instead of serving
    fail_requests: int = 0
    #: close the connection after sending half of the reply frame
    drop_mid_frame: int = 0
    #: flip one payload byte of the reply frame (CRC goes stale, so the
    #: client sees a checksum failure, not silent corruption)
    corrupt_frames: int = 0

    def consume(self, kind: str) -> bool:
        """Whether fault ``kind`` fires now (decrements finite budgets)."""
        budget = getattr(self, kind)
        if budget == 0:
            return False
        if budget > 0:
            setattr(self, kind, budget - 1)
        return True

    def latency_applies(self) -> bool:
        """Whether this data request pays the latency penalty.

        With ``slow_requests == 0`` latency is unconditional; a positive
        budget slows only that many requests (hedge fodder).  When the
        budget runs out the slow spell is over: the latency clears
        itself, rather than reverting to unconditional.
        """
        if self.slow_requests == 0:
            return True
        if self.slow_requests > 0:
            self.slow_requests -= 1
            if self.slow_requests == 0:
                self.latency = 0.0  # spell spent
            return True
        return True  # ALWAYS

    def to_header(self) -> dict:
        """Wire form for the ``fault`` verb."""
        return {
            "latency": self.latency,
            "slow_requests": self.slow_requests,
            "fail_requests": self.fail_requests,
            "drop_mid_frame": self.drop_mid_frame,
            "corrupt_frames": self.corrupt_frames,
        }

    @classmethod
    def from_header(cls, header: dict) -> "NetworkFaultPlan":
        return cls(
            latency=float(header.get("latency", 0.0)),
            slow_requests=int(header.get("slow_requests", 0)),
            fail_requests=int(header.get("fail_requests", 0)),
            drop_mid_frame=int(header.get("drop_mid_frame", 0)),
            corrupt_frames=int(header.get("corrupt_frames", 0)),
        )

    @classmethod
    def random(cls, rng, *, persistent: bool = True) -> "NetworkFaultPlan":
        """A seeded random plan (the sim fuzzer's fault vocabulary).

        ``persistent`` plans poison every data request (:data:`ALWAYS`
        budgets / latency far beyond any sane timeout), making the
        column a deterministic loss; transient plans use finite budgets
        a retry policy is expected to absorb.  ``rng`` is a
        ``random.Random`` so the same seed always yields the same plan.
        """
        kind = rng.choice(["latency", "fail_requests", "drop_mid_frame", "corrupt_frames"])
        if kind == "latency":
            # Far above timeouts when persistent; sub-timeout blip otherwise.
            return cls(latency=10.0 + rng.random() if persistent else 0.001)
        return cls(**{kind: ALWAYS if persistent else 1})


@dataclass
class InjectionLog:
    """Record of everything injected, for test assertions."""

    failed_disks: list[int] = field(default_factory=list)
    latent_errors: list[tuple[int, int]] = field(default_factory=list)  # (disk, strip)
    corruptions: list[tuple[int, int]] = field(default_factory=list)  # (disk, strip)


class FaultInjector:
    """Seeded fault campaigns against a :class:`RAID6Array`."""

    def __init__(self, array: RAID6Array, *, seed: int = 0) -> None:
        self.array = array
        self.rng = np.random.default_rng(seed)
        self.log = InjectionLog()

    def fail_random_disks(self, count: int) -> list[int]:
        """Fail ``count`` distinct healthy disks."""
        healthy = [d.disk_id for d in self.array.disks if not d.failed]
        if count > len(healthy):
            raise ValueError(f"cannot fail {count} of {len(healthy)} healthy disks")
        chosen = [int(x) for x in self.rng.choice(healthy, count, replace=False)]
        for d in chosen:
            self.array.fail_disk(d)
        self.log.failed_disks += chosen
        return chosen

    def inject_latent_errors(self, count: int) -> list[tuple[int, int]]:
        """Mark random strips of healthy disks unreadable."""
        healthy = [d for d in self.array.disks if not d.failed]
        out = []
        for _ in range(count):
            disk = healthy[int(self.rng.integers(0, len(healthy)))]
            strip = int(self.rng.integers(0, disk.n_strips))
            disk.mark_latent_error(strip)
            out.append((disk.disk_id, strip))
        self.log.latent_errors += out
        return out

    def corrupt_random_strips(self, count: int, *, distinct_stripes: bool = True) -> list[tuple[int, int]]:
        """Silently corrupt random strips.

        With ``distinct_stripes`` each corruption lands in a different
        stripe, keeping every stripe within the single-column-correction
        guarantee of the scrubber.
        """
        healthy = [d for d in self.array.disks if not d.failed]
        used: set[int] = {s for (_d, s) in self.log.corruptions}
        out = []
        for i in range(count):
            while True:
                disk = healthy[int(self.rng.integers(0, len(healthy)))]
                strip = int(self.rng.integers(0, disk.n_strips))
                if not distinct_stripes or strip not in used:
                    break
            used.add(strip)
            disk.corrupt(strip, seed=int(self.rng.integers(0, 2**31)))
            out.append((disk.disk_id, strip))
        self.log.corruptions += out
        return out
