"""The RAID-6 array simulator.

Glues a :class:`~repro.codes.base.RAID6Code` to a set of
:class:`~repro.array.disk.SimulatedDisk` via a rotating
:class:`~repro.array.layout.StripeLayout`, and implements the
operational paths the paper's metrics correspond to:

* **full-stripe write** -- one encode (the encoding-throughput
  experiments measure exactly this kernel);
* **small write** -- read-modify-write through the code's delta
  ``update`` (the update-complexity metric = parity strips written);
* **degraded read** -- on any disk/medium error, the stripe is decoded
  on the fly from survivors (decoding-throughput kernel);
* **rebuild** -- whole-array reconstruction onto replacement disks;
* **scrub** -- see :mod:`repro.array.scrub`.

The array is deliberately synchronous and single-threaded: the paper's
evaluation is about coding computation, not queueing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.array.disk import DiskError, LatentSectorError, SimulatedDisk
from repro.array.layout import StripeLayout
from repro.codes.base import RAID6Code
from repro.utils.words import WORD_DTYPE

__all__ = ["ArrayStats", "RAID6Array", "ArrayDegradedError"]


class ArrayDegradedError(Exception):
    """Raised when an operation exceeds the array's fault tolerance."""


@dataclass
class ArrayStats:
    """Operation counters for the whole array."""

    full_stripe_writes: int = 0
    small_writes: int = 0
    parity_strip_writes: int = 0
    degraded_reads: int = 0
    stripes_rebuilt: int = 0
    latent_repairs: int = 0

    def reset(self) -> None:
        self.full_stripe_writes = 0
        self.small_writes = 0
        self.parity_strip_writes = 0
        self.degraded_reads = 0
        self.stripes_rebuilt = 0
        self.latent_repairs = 0


class RAID6Array:
    """A ``k + 2``-disk RAID-6 array over a pluggable erasure code."""

    def __init__(
        self, code: RAID6Code, n_stripes: int = 64, *, layout: StripeLayout | None = None
    ) -> None:
        self.code = code
        if layout is None:
            layout = StripeLayout(code.k, code.rows, code.element_size, n_stripes)
        elif (layout.k, layout.rows, layout.element_size) != (
            code.k,
            code.rows,
            code.element_size,
        ):
            raise ValueError("layout geometry does not match the code")
        self.layout = layout
        strip_words = code.rows * (code.element_size // 8)
        self.disks = [
            SimulatedDisk(d, layout.n_stripes, strip_words)
            for d in range(layout.n_disks)
        ]
        self.stats = ArrayStats()

    # -- basics -------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """User-addressable bytes."""
        return self.layout.capacity_bytes

    def failed_disks(self) -> list[int]:
        return [d.disk_id for d in self.disks if d.failed]

    def _strip_view(self, strip_words: np.ndarray) -> np.ndarray:
        """Reshape a flat strip to ``(rows, words_per_element)``."""
        return strip_words.reshape(self.code.rows, -1)

    # -- stripe gather / scatter ------------------------------------------------

    def read_stripe(
        self, stripe: int, *, reconstruct: bool = True, heal_latent: bool = True
    ) -> np.ndarray:
        """Assemble the full stripe buffer, decoding unreadable strips.

        Returns a ``(total_cols, rows, words)`` buffer in logical column
        order.  With ``reconstruct=False``, unreadable columns are left
        zeroed and no decode is attempted.

        ``heal_latent``: a strip lost to a *medium* error (as opposed to
        a whole-disk failure) is rewritten with its reconstructed
        contents, as production arrays do -- otherwise every latent
        error would permanently consume one unit of the stripe's
        two-failure budget.
        """
        code = self.code
        buf = code.alloc_stripe()
        missing: list[int] = []
        latent: list[int] = []
        for col in range(code.n_cols):
            disk = self.disks[self.layout.disk_for(stripe, col)]
            try:
                buf[col] = self._strip_view(disk.read_strip(stripe))
            except LatentSectorError:
                missing.append(col)
                latent.append(col)
            except DiskError:
                missing.append(col)
        if missing and reconstruct:
            if len(missing) > 2:
                raise ArrayDegradedError(
                    f"stripe {stripe}: {len(missing)} unreadable columns {missing}"
                )
            code.decode(buf, missing)
            self.stats.degraded_reads += 1
            if heal_latent and latent:
                self.write_stripe(stripe, buf, columns=latent)
                self.stats.latent_repairs += len(latent)
        return buf

    def write_stripe(
        self, stripe: int, buf: np.ndarray, *, columns=None, skip_failed: bool = True
    ) -> None:
        """Scatter (selected columns of) a stripe buffer to the disks.

        With ``skip_failed`` (the default), strips destined for failed
        disks are dropped -- the degraded-write semantics of real
        arrays: the lost column stays recoverable through the parity
        that *was* written.
        """
        code = self.code
        cols = range(code.n_cols) if columns is None else columns
        for col in cols:
            disk = self.disks[self.layout.disk_for(stripe, col)]
            if disk.failed and skip_failed:
                continue
            disk.write_strip(stripe, buf[col].reshape(-1))

    # -- user I/O -------------------------------------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Write user bytes at ``offset``.

        Stripe-aligned, stripe-sized spans take the full-stripe path
        (compute parity once, write everything); everything else is
        element-granular read-modify-write through ``code.update``.
        """
        if not data:
            return
        sdb = self.layout.stripe_data_bytes
        pos, end = offset, offset + len(data)
        while pos < end:
            stripe = pos // sdb
            stripe_start = stripe * sdb
            if pos == stripe_start and end - pos >= sdb:
                self._write_full_stripe(
                    stripe, data[pos - offset : pos - offset + sdb]
                )
                pos += sdb
            else:
                take = min(end, stripe_start + sdb) - pos
                self._write_small(pos, data[pos - offset : pos - offset + take])
                pos += take

    def _write_full_stripe(self, stripe: int, payload: bytes) -> None:
        code = self.code
        buf = code.alloc_stripe()
        words = np.frombuffer(payload, dtype=np.uint8)
        elem = code.element_size
        for col in range(code.k):
            start = col * code.strip_bytes
            strip = words[start : start + code.strip_bytes]
            buf[col] = strip.view(WORD_DTYPE).reshape(code.rows, -1)
        code.encode(buf)
        self.write_stripe(stripe, buf)
        self.stats.full_stripe_writes += 1
        self.stats.parity_strip_writes += 2

    def _write_small(self, offset: int, payload: bytes) -> None:
        """Element-granular RMW within one stripe."""
        code = self.code
        pieces = self.layout.byte_range_elements(offset, len(payload))
        pos = 0
        for addr, lo, hi in pieces:
            stripe = addr.stripe
            buf = self.read_stripe(stripe)
            old = buf[addr.column, addr.row].view(np.uint8).copy()
            old[lo:hi] = np.frombuffer(payload[pos : pos + (hi - lo)], dtype=np.uint8)
            pos += hi - lo
            new_elem = old.view(WORD_DTYPE)
            touched = code.update(buf, addr.column, addr.row, new_elem)
            # Persist the data strip and every touched parity strip.
            self.write_stripe(stripe, buf, columns=[addr.column])
            parity_cols = sorted({c for c in (code.p_col, code.q_col)})
            self.write_stripe(stripe, buf, columns=parity_cols)
            self.stats.small_writes += 1
            self.stats.parity_strip_writes += len(parity_cols)
            del touched

    def read(self, offset: int, length: int) -> bytes:
        """Read user bytes, transparently decoding around failures."""
        if length == 0:
            return b""
        pieces = self.layout.byte_range_elements(offset, length)
        out = bytearray()
        cache: dict[int, np.ndarray] = {}
        for addr, lo, hi in pieces:
            disk = self.disks[addr.disk]
            try:
                strip = self._strip_view(disk.read_strip(addr.stripe))
                elem = strip[addr.row]
            except DiskError:
                if addr.stripe not in cache:
                    cache[addr.stripe] = self.read_stripe(addr.stripe)
                elem = cache[addr.stripe][addr.column, addr.row]
            out += elem.view(np.uint8)[lo:hi].data  # zero-copy view append
        return bytes(out)

    # -- failure handling ------------------------------------------------------------

    def fail_disk(self, disk_id: int) -> None:
        """Inject a whole-disk failure."""
        if len(self.failed_disks()) >= 2:
            raise ArrayDegradedError("array already has two failed disks")
        self.disks[disk_id].fail()

    def rebuild(self) -> int:
        """Reconstruct all failed disks onto replacements.

        Returns the number of stripes rebuilt.  Raises
        :class:`ArrayDegradedError` if more than two disks are down.
        """
        dead = self.failed_disks()
        if not dead:
            return 0
        if len(dead) > 2:
            raise ArrayDegradedError(f"{len(dead)} failed disks exceed RAID-6 tolerance")
        # Only stripes that place a column on a dead disk need work --
        # with a declustered layout that is a fraction of the array,
        # which is exactly how declustering shortens the rebuild window.
        affected = [
            stripe
            for stripe in range(self.layout.n_stripes)
            if any(self.layout.column_for(stripe, d) is not None for d in dead)
        ]
        # Reconstruct *before* swapping in blank disks: read_stripe
        # decodes the dead columns together with any latent sector
        # errors on surviving disks (and heals the latter), so a medium
        # error discovered during rebuild cannot silently inject zeros
        # into the reconstruction.
        recovered = {stripe: self.read_stripe(stripe) for stripe in affected}
        for d in dead:
            self.disks[d].replace()
        for stripe, buf in recovered.items():
            cols = [
                c
                for c in (self.layout.column_for(stripe, d) for d in dead)
                if c is not None
            ]
            self.write_stripe(stripe, buf, columns=cols)
        self.stats.stripes_rebuilt += len(affected)
        return len(affected)

    # -- online growth --------------------------------------------------------------

    def grow_data_disk(self):
        """Add one data disk (``k -> k+1``) without recomputing parity.

        The Liberation scalability property the paper's §III Case (b)
        relies on: with ``p`` fixed, a new all-zero data column changes
        neither parity strip, so growth is pure data movement -- each
        stripe keeps its old strips (relocated for the wider rotation)
        plus one zeroed strip; ``encode`` is never called.

        Stripe-local data is preserved in place; because the per-stripe
        data size grows, *global* byte offsets of existing data shift.
        Returns ``translate(old_offset) -> new_offset`` so callers can
        re-address (an offline restripe, as in real capacity expansion).

        Raises if the code cannot take another column at its fixed
        geometry (e.g. Liberation at ``k = p``) or if any disk is down.
        """
        if self.failed_disks():
            raise ArrayDegradedError("grow requires a healthy array")
        old_code, old_layout = self.code, self.layout
        new_code = old_code.with_k(old_code.k + 1)
        if new_code.rows != old_code.rows or new_code.element_size != old_code.element_size:
            raise ValueError("grown code changed the strip geometry")

        # Gather every stripe under the old layout first.
        stripes = [
            self.read_stripe(s, reconstruct=False)
            for s in range(old_layout.n_stripes)
        ]

        # Swap in the wider geometry and a fresh disk.
        self.code = new_code
        self.layout = StripeLayout(
            new_code.k, new_code.rows, new_code.element_size, old_layout.n_stripes
        )
        strip_words = new_code.rows * (new_code.element_size // 8)
        self.disks.append(
            SimulatedDisk(len(self.disks), old_layout.n_stripes, strip_words)
        )

        # Scatter: old data columns keep their contents, the new column
        # k_old is zero, parity strips move over verbatim.
        k_old = old_code.k
        for s, old_buf in enumerate(stripes):
            buf = new_code.alloc_stripe()
            buf[:k_old] = old_buf[:k_old]
            buf[new_code.p_col] = old_buf[old_code.p_col]
            buf[new_code.q_col] = old_buf[old_code.q_col]
            self.write_stripe(s, buf)

        old_sdb = old_layout.stripe_data_bytes
        new_sdb = self.layout.stripe_data_bytes

        def translate(old_offset: int) -> int:
            stripe, within = divmod(old_offset, old_sdb)
            return stripe * new_sdb + within

        return translate

    def __repr__(self) -> str:
        return (
            f"RAID6Array(code={self.code.name}, k={self.code.k}, "
            f"stripes={self.layout.n_stripes}, failed={self.failed_disks()})"
        )
