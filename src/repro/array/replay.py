"""Trace-driven workload replay.

Replays I/O traces against a :class:`~repro.array.raid6.RAID6Array` and
aggregates the metrics the paper's evaluation cares about: how much
coding work (full-stripe encodes vs RMW updates vs degraded decodes)
a real access pattern induces, and the resulting read/write
amplification.

Trace format (one op per line, ``#`` comments allowed)::

    W <offset> <length> [seed]
    R <offset> <length>

so published block traces can be converted with a one-line awk script.
:func:`synthesize_trace` writes representative traces (sequential,
uniform-random, zipf-hotspot) for the examples and tests.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

import numpy as np

from repro.array.raid6 import RAID6Array
from repro.array.workloads import payload

__all__ = ["TraceOp", "ReplayStats", "parse_trace", "replay", "synthesize_trace"]


@dataclass(frozen=True)
class TraceOp:
    """One trace record."""

    kind: str  # "R" or "W"
    offset: int
    length: int
    seed: int = 0


@dataclass
class ReplayStats:
    """Aggregate outcome of a replay."""

    ops: int = 0
    reads: int = 0
    writes: int = 0
    user_bytes_read: int = 0
    user_bytes_written: int = 0
    disk_bytes_read: int = 0
    disk_bytes_written: int = 0
    full_stripe_writes: int = 0
    small_writes: int = 0
    degraded_reads: int = 0

    @property
    def write_amplification(self) -> float:
        if not self.user_bytes_written:
            return 0.0
        return self.disk_bytes_written / self.user_bytes_written

    @property
    def read_amplification(self) -> float:
        if not self.user_bytes_read:
            return 0.0
        return self.disk_bytes_read / self.user_bytes_read


def parse_trace(text: str | io.TextIOBase) -> Iterator[TraceOp]:
    """Parse the trace format (see module docstring)."""
    lines = text.splitlines() if isinstance(text, str) else text
    for lineno, raw in enumerate(lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].upper()
        if kind not in ("R", "W") or len(parts) < 3:
            raise ValueError(f"trace line {lineno}: malformed record {raw!r}")
        offset, length = int(parts[1]), int(parts[2])
        seed = int(parts[3]) if len(parts) > 3 else lineno
        if offset < 0 or length < 0:
            raise ValueError(f"trace line {lineno}: negative offset/length")
        yield TraceOp(kind, offset, length, seed)


def replay(array: RAID6Array, ops: Iterable[TraceOp]) -> ReplayStats:
    """Run a trace against an array, returning aggregate statistics.

    Offsets/lengths are clamped to the array's capacity so traces taken
    from larger devices still replay meaningfully.
    """
    stats = ReplayStats()
    base_stats = array.stats
    start_fsw = base_stats.full_stripe_writes
    start_small = base_stats.small_writes
    start_degraded = base_stats.degraded_reads
    start_read = sum(d.stats.bytes_read for d in array.disks)
    start_written = sum(d.stats.bytes_written for d in array.disks)

    cap = array.capacity
    for op in ops:
        offset = op.offset % cap
        length = min(op.length, cap - offset)
        if length <= 0:
            continue
        stats.ops += 1
        if op.kind == "R":
            array.read(offset, length)
            stats.reads += 1
            stats.user_bytes_read += length
        else:
            array.write(offset, payload(length, op.seed))
            stats.writes += 1
            stats.user_bytes_written += length

    stats.disk_bytes_read = sum(d.stats.bytes_read for d in array.disks) - start_read
    stats.disk_bytes_written = (
        sum(d.stats.bytes_written for d in array.disks) - start_written
    )
    stats.full_stripe_writes = base_stats.full_stripe_writes - start_fsw
    stats.small_writes = base_stats.small_writes - start_small
    stats.degraded_reads = base_stats.degraded_reads - start_degraded
    return stats


def synthesize_trace(
    kind: str,
    capacity: int,
    *,
    n_ops: int = 200,
    io_size: int = 4096,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> str:
    """Generate a representative trace as text.

    ``kind``: ``sequential`` (streaming write then read-back),
    ``uniform`` (random offsets), or ``zipf`` (hot-spot skew).
    """
    rng = np.random.default_rng(seed)
    lines = [f"# synthetic '{kind}' trace, {n_ops} ops"]
    if kind == "sequential":
        pos = 0
        for i in range(n_ops):
            if pos + io_size > capacity:
                pos = 0
            lines.append(f"W {pos} {io_size} {i}")
            pos += io_size
    elif kind == "uniform":
        slots = max(1, capacity // io_size)
        for i in range(n_ops):
            off = int(rng.integers(0, slots)) * io_size
            op = "R" if rng.random() < read_fraction else "W"
            lines.append(f"{op} {off} {io_size} {i}")
    elif kind == "zipf":
        slots = max(1, capacity // io_size)
        ranks = np.minimum(rng.zipf(1.3, size=n_ops) - 1, slots - 1)
        perm = rng.permutation(slots)
        for i, r in enumerate(ranks):
            off = int(perm[int(r)]) * io_size
            op = "R" if rng.random() < read_fraction else "W"
            lines.append(f"{op} {off} {io_size} {i}")
    else:
        raise ValueError(f"unknown trace kind {kind!r}")
    return "\n".join(lines) + "\n"
