"""In-memory simulated disks.

A :class:`SimulatedDisk` stores whole *strips* (one column's share of a
stripe, ``rows * element_size`` bytes) and models the failure modes the
paper's storage context cares about:

* **whole-disk failure** -- every access raises until the disk is
  replaced (RAID-6's raison d'etre: two of these at once);
* **latent sector errors** -- individual strips marked unreadable
  (the "uncorrectable read error during recovery" scenario from §I);
* **silent corruption** -- a strip's contents flipped without any error
  signal, detectable only by scrubbing.

I/O statistics are tracked per disk so tests and examples can assert
on traffic (e.g. update-complexity experiments count parity writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.words import WORD_DTYPE

__all__ = ["DiskError", "DiskFailedError", "LatentSectorError", "DiskStats", "SimulatedDisk"]


class DiskError(Exception):
    """Base class for simulated disk faults."""


class DiskFailedError(DiskError):
    """The whole disk is offline."""


class LatentSectorError(DiskError):
    """A specific strip is unreadable (medium error)."""


@dataclass
class DiskStats:
    """Cumulative I/O counters."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.reads = self.writes = self.bytes_read = self.bytes_written = 0


class SimulatedDisk:
    """A strip-granular in-memory block device."""

    def __init__(self, disk_id: int, n_strips: int, strip_words: int) -> None:
        if n_strips <= 0 or strip_words <= 0:
            raise ValueError("disk geometry must be positive")
        self.disk_id = int(disk_id)
        self.n_strips = int(n_strips)
        self.strip_words = int(strip_words)
        self._store = np.zeros((n_strips, strip_words), dtype=WORD_DTYPE)
        self._failed = False
        self._latent: set[int] = set()
        self.stats = DiskStats()

    # -- health ----------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Take the disk offline (whole-device failure)."""
        self._failed = True

    def replace(self) -> None:
        """Swap in a fresh (zeroed) replacement disk."""
        self._store[:] = 0
        self._latent.clear()
        self._failed = False
        self.stats.reset()

    def mark_latent_error(self, strip: int) -> None:
        """Make one strip unreadable until it is next rewritten."""
        self._check_strip(strip)
        self._latent.add(strip)

    def corrupt(self, strip: int, pattern: np.ndarray | None = None, *, seed: int | None = None) -> None:
        """Silently flip bits in a strip (no error is ever signalled)."""
        self._check_strip(strip)
        if pattern is None:
            rng = np.random.default_rng(seed)
            pattern = rng.integers(1, 2**64, self.strip_words, dtype=WORD_DTYPE)
        self._store[strip] ^= np.asarray(pattern, dtype=WORD_DTYPE)

    # -- I/O -----------------------------------------------------------------

    def _check_strip(self, strip: int) -> None:
        if not 0 <= strip < self.n_strips:
            raise IndexError(
                f"strip {strip} out of range [0, {self.n_strips}) on disk {self.disk_id}"
            )

    def read_strip(self, strip: int) -> np.ndarray:
        """Return a copy of a strip's words."""
        self._check_strip(strip)
        if self._failed:
            raise DiskFailedError(f"disk {self.disk_id} is failed")
        if strip in self._latent:
            raise LatentSectorError(f"disk {self.disk_id} strip {strip} unreadable")
        self.stats.reads += 1
        self.stats.bytes_read += self.strip_words * 8
        return self._store[strip].copy()

    def write_strip(self, strip: int, words: np.ndarray) -> None:
        """Overwrite a strip (clears any latent error on it)."""
        self._check_strip(strip)
        if self._failed:
            raise DiskFailedError(f"disk {self.disk_id} is failed")
        words = np.asarray(words, dtype=WORD_DTYPE).reshape(-1)
        if words.size != self.strip_words:
            raise ValueError(
                f"strip write size {words.size} words != {self.strip_words}"
            )
        self._store[strip] = words
        self._latent.discard(strip)
        self.stats.writes += 1
        self.stats.bytes_written += self.strip_words * 8

    def __repr__(self) -> str:
        state = "FAILED" if self._failed else f"ok, {len(self._latent)} latent"
        return f"SimulatedDisk(id={self.disk_id}, strips={self.n_strips}, {state})"
