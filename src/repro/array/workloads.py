"""Synthetic workload generators.

The paper's motivation spans full-stripe sequential I/O (encoding
throughput), small random writes (update complexity -- "the dominant
write operations in database systems"), and recovery traffic.  These
generators produce deterministic, seedable operation streams so the
examples and benchmarks exercise the array the same way every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np

__all__ = ["WriteOp", "sequential_fill", "random_small_writes", "oltp_mix", "payload"]


@dataclass(frozen=True)
class WriteOp:
    """One user write: ``data`` placed at byte ``offset``."""

    offset: int
    data: bytes


def payload(size: int, seed: int) -> bytes:
    """Deterministic pseudo-random payload bytes."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


def sequential_fill(capacity: int, stripe_bytes: int, *, seed: int = 0) -> Iterator[WriteOp]:
    """Full-capacity sequential fill in stripe-sized chunks.

    Drives the full-stripe (encode) path exclusively.
    """
    n = capacity // stripe_bytes
    for i in range(n):
        yield WriteOp(i * stripe_bytes, payload(stripe_bytes, seed + i))


def random_small_writes(
    capacity: int, element_size: int, count: int, *, seed: int = 0
) -> Iterator[WriteOp]:
    """Uniformly random element-aligned small writes (the RMW path)."""
    rng = np.random.default_rng(seed)
    n_elements = capacity // element_size
    for i in range(count):
        idx = int(rng.integers(0, n_elements))
        yield WriteOp(idx * element_size, payload(element_size, seed ^ (i + 1)))


def oltp_mix(
    capacity: int,
    stripe_bytes: int,
    element_size: int,
    count: int,
    *,
    small_fraction: float = 0.9,
    seed: int = 0,
) -> Iterator[WriteOp]:
    """A database-like mix: mostly small writes, occasional full stripes."""
    if not 0.0 <= small_fraction <= 1.0:
        raise ValueError(f"small_fraction must be in [0, 1], got {small_fraction}")
    rng = np.random.default_rng(seed)
    n_elements = capacity // element_size
    n_stripes = capacity // stripe_bytes
    for i in range(count):
        if rng.random() < small_fraction:
            idx = int(rng.integers(0, n_elements))
            yield WriteOp(idx * element_size, payload(element_size, seed ^ (2 * i + 1)))
        else:
            s = int(rng.integers(0, n_stripes))
            yield WriteOp(s * stripe_bytes, payload(stripe_bytes, seed ^ (2 * i)))
