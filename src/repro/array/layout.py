"""Stripe-to-disk layout with rotating parity.

Maps the logical address space onto ``n = k + 2`` disks the way
production RAID-6 does (left-symmetric rotation): for stripe ``s`` the
role of disk ``d`` rotates so P and Q do not hot-spot one spindle.
Logical *columns* (the code's view: data 0..k-1, P, Q) are translated
to physical disks per stripe.

Addressing follows the paper's Fig. 1: an *element* is the I/O unit,
a *strip* is ``rows`` elements on one disk, a *stripe* is one strip
from every disk, and user bytes fill data columns in column-major
element order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Address", "StripeLayout"]


@dataclass(frozen=True)
class Address:
    """Physical coordinates of one logical element."""

    stripe: int
    column: int  # logical column (0..k-1 data, k = P, k+1 = Q)
    row: int  # element index within the strip
    disk: int  # physical disk holding this column in this stripe


class StripeLayout:
    """Rotating-parity layout over ``n_disks = k + 2``."""

    def __init__(self, k: int, rows: int, element_size: int, n_stripes: int) -> None:
        if min(k, rows, element_size, n_stripes) <= 0:
            raise ValueError("layout dimensions must be positive")
        self.k = k
        self.rows = rows
        self.element_size = element_size
        self.n_stripes = n_stripes
        self.n_disks = k + 2

    # -- capacity ----------------------------------------------------------

    @property
    def stripe_data_bytes(self) -> int:
        return self.k * self.rows * self.element_size

    @property
    def capacity_bytes(self) -> int:
        """Total user-addressable bytes."""
        return self.n_stripes * self.stripe_data_bytes

    # -- rotation -------------------------------------------------------------

    def disk_for(self, stripe: int, column: int) -> int:
        """Physical disk holding logical ``column`` of ``stripe``.

        Left-symmetric: the whole column set shifts one disk per
        stripe, so over ``n`` consecutive stripes each disk serves P
        and Q exactly once.
        """
        if not 0 <= column < self.n_disks:
            raise IndexError(f"column {column} out of range [0, {self.n_disks})")
        return (column + stripe) % self.n_disks

    def column_for(self, stripe: int, disk: int) -> int:
        """Inverse of :meth:`disk_for`."""
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} out of range [0, {self.n_disks})")
        return (disk - stripe) % self.n_disks

    # -- element addressing ------------------------------------------------------

    def n_elements(self) -> int:
        return self.n_stripes * self.k * self.rows

    def element_address(self, index: int) -> Address:
        """Physical address of logical element ``index``.

        Elements fill a stripe column-major (all of data column 0's
        strip, then column 1, ...) before moving to the next stripe --
        matching how striping units map in Fig. 1.
        """
        if not 0 <= index < self.n_elements():
            raise IndexError(f"element {index} out of range [0, {self.n_elements()})")
        per_stripe = self.k * self.rows
        stripe, rem = divmod(index, per_stripe)
        column, row = divmod(rem, self.rows)
        return Address(stripe, column, row, self.disk_for(stripe, column))

    def byte_range_elements(self, offset: int, length: int) -> list[tuple[Address, int, int]]:
        """Elements overlapping byte range ``[offset, offset+length)``.

        Returns ``(address, start_within_element, end_within_element)``
        triples, in logical order.
        """
        if offset < 0 or length < 0 or offset + length > self.capacity_bytes:
            raise ValueError(
                f"byte range [{offset}, {offset + length}) outside capacity "
                f"{self.capacity_bytes}"
            )
        out = []
        pos = offset
        end = offset + length
        while pos < end:
            idx, within = divmod(pos, self.element_size)
            take = min(self.element_size - within, end - pos)
            out.append((self.element_address(idx), within, within + take))
            pos += take
        return out


class DeclusteredLayout(StripeLayout):
    """Parity declustering: stripes spread over a pool of ``n_pool``
    disks (``n_pool >= k + 2``).

    Each stripe maps its ``k + 2`` columns onto a deterministic
    pseudo-random subset/permutation of the pool.  A failed disk then
    touches only ``(k+2)/n_pool`` of the stripes, and its
    reconstruction reads spread across *all* survivors -- shrinking the
    rebuild window during which a second failure or an unrecoverable
    read error is fatal (the exposure §I quantifies).
    """

    def __init__(
        self, k: int, rows: int, element_size: int, n_stripes: int, n_pool: int, *, seed: int = 0
    ) -> None:
        super().__init__(k, rows, element_size, n_stripes)
        if n_pool < k + 2:
            raise ValueError(f"pool of {n_pool} disks cannot host k+2 = {k + 2} columns")
        self.n_disks = int(n_pool)
        self.seed = int(seed)
        import numpy as _np

        self._maps = []
        for s in range(n_stripes):
            rng = _np.random.default_rng((self.seed << 32) ^ (s * 0x9E3779B9 + 1))
            self._maps.append(tuple(int(x) for x in rng.permutation(n_pool)[: k + 2]))

    def disk_for(self, stripe: int, column: int) -> int:
        if not 0 <= column < self.k + 2:
            raise IndexError(f"column {column} out of range [0, {self.k + 2})")
        return self._maps[stripe][column]

    def column_for(self, stripe: int, disk: int):
        """Logical column of ``disk`` in ``stripe``, or ``None`` if the
        stripe does not touch that disk."""
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} out of range [0, {self.n_disks})")
        mapping = self._maps[stripe]
        try:
            return mapping.index(disk)
        except ValueError:
            return None

    def stripes_on_disk(self, disk: int) -> list[int]:
        """Stripes that place a column on ``disk``."""
        return [s for s in range(self.n_stripes) if disk in self._maps[s]]
