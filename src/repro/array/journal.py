"""Write-hole protection: a parity-update journal with crash recovery.

RAID-5/6 small writes update a data strip and its parity strips
non-atomically; a crash between those writes leaves the stripe's parity
inconsistent (**the RAID write hole**).  The inconsistency is silent --
until a disk later fails and reconstruction, computed from mismatched
parity, returns garbage for an *unrelated* strip of the same stripe.

:class:`JournaledRAID6Array` closes the hole the way production arrays
do (NVRAM / journal device): every multi-strip update first logs an
*intent record* (stripe + new strip images) to a journal with atomic
record appends, then performs the disk writes, then retires the record.
After a crash, :meth:`JournaledRAID6Array.recover` replays every
unretired record -- rewriting the logged strips in full -- which makes
each logged update atomic: the stripe ends up entirely-new and
consistent, no matter where the crash landed.

Crash injection is deterministic: :class:`CrashPoint` raises
:class:`SimulatedCrash` after a chosen number of strip writes, so tests
can sweep *every* crash position of a workload
(`tests/array/test_journal.py`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.array.raid6 import RAID6Array
from repro.utils.words import WORD_DTYPE

__all__ = [
    "SimulatedCrash",
    "CrashPoint",
    "JournalRecord",
    "StripeJournal",
    "JournaledRAID6Array",
]


class SimulatedCrash(Exception):
    """Power loss: raised mid-update by a :class:`CrashPoint`."""


class CrashPoint:
    """Deterministic crash trigger: fires after ``after`` strip writes."""

    def __init__(self, after: int) -> None:
        self.remaining = int(after)

    def on_write(self) -> None:
        if self.remaining == 0:
            raise SimulatedCrash("power lost during strip write")
        self.remaining -= 1


@dataclass
class JournalRecord:
    """One logged intent: full new images of the strips being changed."""

    seq: int
    stripe: int
    strips: dict[int, np.ndarray]  # column -> new strip contents (rows, words)
    retired: bool = False


class StripeJournal:
    """An NVRAM-like intent log with atomic appends and retirement.

    The simulation assumes record append and retirement are atomic
    (real journals achieve this with checksummed sequenced records);
    everything *between* them -- the actual disk writes -- may be torn.
    """

    def __init__(self) -> None:
        self._records: list[JournalRecord] = []
        self._next_seq = 0

    def log(self, stripe: int, strips: dict[int, np.ndarray]) -> JournalRecord:
        rec = JournalRecord(
            self._next_seq,
            stripe,
            {col: np.array(data, dtype=WORD_DTYPE, copy=True) for col, data in strips.items()},
        )
        self._next_seq += 1
        self._records.append(rec)
        return rec

    def retire(self, rec: JournalRecord) -> None:
        rec.retired = True
        # Keep the log bounded, like a circular NVRAM region.
        while self._records and self._records[0].retired:
            self._records.pop(0)

    def pending(self) -> list[JournalRecord]:
        """Unretired records in append order."""
        return [r for r in self._records if not r.retired]

    def __len__(self) -> int:
        return len(self._records)


class JournaledRAID6Array(RAID6Array):
    """A RAID-6 array whose stripe updates are crash-atomic."""

    def __init__(
        self,
        code,
        n_stripes: int = 64,
        journal: StripeJournal | None = None,
        *,
        layout=None,
    ) -> None:
        super().__init__(code, n_stripes=n_stripes, layout=layout)
        self.journal = journal if journal is not None else StripeJournal()
        self._crash_point: CrashPoint | None = None

    # -- crash plumbing ----------------------------------------------------

    def arm_crash(self, crash: CrashPoint | None) -> None:
        """Install (or clear) a crash trigger for subsequent writes."""
        self._crash_point = crash

    def write_stripe(self, stripe, buf, *, columns=None, skip_failed=True):
        code = self.code
        cols = list(range(code.n_cols)) if columns is None else list(columns)
        for col in cols:
            disk = self.disks[self.layout.disk_for(stripe, col)]
            if disk.failed and skip_failed:
                continue
            if self._crash_point is not None:
                self._crash_point.on_write()
            disk.write_strip(stripe, buf[col].reshape(-1))

    # -- journaled update paths ------------------------------------------------

    def _write_full_stripe(self, stripe: int, payload: bytes) -> None:
        code = self.code
        buf = code.alloc_stripe()
        words = np.frombuffer(payload, dtype=np.uint8)
        for col in range(code.k):
            start = col * code.strip_bytes
            strip = words[start : start + code.strip_bytes]
            buf[col] = strip.view(WORD_DTYPE).reshape(code.rows, -1)
        code.encode(buf)
        rec = self.journal.log(
            stripe, {col: buf[col] for col in range(code.n_cols)}
        )
        self.write_stripe(stripe, buf)
        self.journal.retire(rec)
        self.stats.full_stripe_writes += 1
        self.stats.parity_strip_writes += 2

    def _write_small(self, offset: int, payload: bytes) -> None:
        code = self.code
        pieces = self.layout.byte_range_elements(offset, len(payload))
        pos = 0
        for addr, lo, hi in pieces:
            stripe = addr.stripe
            buf = self.read_stripe(stripe)
            old = buf[addr.column, addr.row].view(np.uint8).copy()
            old[lo:hi] = np.frombuffer(payload[pos : pos + (hi - lo)], dtype=np.uint8)
            pos += hi - lo
            code.update(buf, addr.column, addr.row, old.view(WORD_DTYPE))
            touched = [addr.column, code.p_col, code.q_col]
            rec = self.journal.log(stripe, {c: buf[c] for c in touched})
            self.write_stripe(stripe, buf, columns=touched)
            self.journal.retire(rec)
            self.stats.small_writes += 1
            self.stats.parity_strip_writes += 2

    # -- recovery ------------------------------------------------------------------

    def recover(self) -> int:
        """Post-crash recovery: replay every unretired intent record.

        Returns the number of records replayed.  Idempotent -- the
        records hold full strip images, so replaying twice is harmless.
        """
        self._crash_point = None
        replayed = 0
        for rec in self.journal.pending():
            buf = self.code.alloc_stripe()
            for col, data in rec.strips.items():
                buf[col] = data
            self.write_stripe(rec.stripe, buf, columns=list(rec.strips))
            self.journal.retire(rec)
            replayed += 1
        return replayed
