#!/usr/bin/env python3
"""Quickstart: encode, lose two disks, recover.

Demonstrates the core public API on a small RAID-6 configuration and
prints the XOR accounting that is the subject of the paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LiberationOptimal, LiberationOriginal


def main() -> None:
    # A RAID-6 group with 6 data disks (p = 7 chosen automatically),
    # 4 KiB elements -- so one stripe carries 6 * 7 * 4096 bytes of data.
    code = LiberationOptimal(k=6, element_size=4096)
    print(f"code: {code}")
    print(f"stripe: {code.k} data strips + P + Q, {code.data_bytes} data bytes")

    # Fill the data columns with (reproducible) payload and encode.
    rng = np.random.default_rng(42)
    stripe = code.alloc_stripe()
    stripe[: code.k] = rng.integers(0, 2**64, stripe[: code.k].shape, dtype=np.uint64)
    code.encode(stripe)
    original = stripe.copy()

    print(f"\nencoding cost: {code.encoding_xors()} XORs "
          f"({code.encoding_complexity():.2f} per parity bit; "
          f"lower bound is k-1 = {code.k - 1})")

    # Disks 1 and 4 die.  Their strips become garbage.
    stripe[1] = rng.integers(0, 2**64, stripe[1].shape, dtype=np.uint64)
    stripe[4] = rng.integers(0, 2**64, stripe[4].shape, dtype=np.uint64)

    code.decode(stripe, erasures=[1, 4])
    assert np.array_equal(stripe[: code.n_cols], original[: code.n_cols])
    print(f"\nrecovered strips 1 and 4 bit-perfectly "
          f"({code.decoding_xors([1, 4])} XORs, "
          f"{code.decoding_complexity([1, 4]):.2f} per missing bit)")

    # Compare with the original (Jerasure bit-matrix) implementation.
    baseline = LiberationOriginal(k=6, element_size=4096)
    print(f"\nvs. the original implementation:")
    print(f"  encode XORs: {baseline.encoding_xors()} -> {code.encoding_xors()}")
    print(f"  decode XORs {{1,4}}: {baseline.decoding_xors([1, 4])} "
          f"-> {code.decoding_xors([1, 4])}")

    # Small writes: the Liberation codes' signature strength.
    new_elem = rng.integers(0, 2**64, stripe[0, 0].shape, dtype=np.uint64)
    touched = code.update(stripe, col=0, row=0, new_element=new_elem)
    assert code.verify(stripe)
    print(f"\nsmall write updated {touched} parity elements "
          f"(the theoretical minimum is 2)")


if __name__ == "__main__":
    main()
