#!/usr/bin/env python3
"""The RAID write hole, demonstrated -- and closed with a journal.

Part 1 tears a small write by hand on a plain array (data strip
written, parity strips not), then fails a disk: reconstruction of an
*unrelated* strip silently returns garbage.  Part 2 runs the same
scenario on a :class:`JournaledRAID6Array` with a simulated power loss
at every possible write position; recovery replays the journal and the
array is consistent every time.

Run:  python examples/crash_recovery.py
"""

import numpy as np

from repro.array import (
    CrashPoint,
    JournaledRAID6Array,
    RAID6Array,
    SimulatedCrash,
)
from repro.array.workloads import payload
from repro.codes import make_code

K, P, ELEM, STRIPES = 4, 5, 512, 8


def fresh(cls):
    code = make_code("liberation-optimal", K, p=P, element_size=ELEM)
    arr = cls(code, n_stripes=STRIPES)
    arr.write(0, payload(arr.capacity, seed=1))
    return arr


def main() -> None:
    # ---- Part 1: the hole -------------------------------------------------
    arr = fresh(RAID6Array)
    code = arr.code
    before = arr.read(0, code.strip_bytes)  # stripe 0, column 0's data

    buf = arr.read_stripe(0)
    code.update(buf, 1, 2, np.frombuffer(payload(ELEM, seed=7), dtype=np.uint64))
    arr.write_stripe(0, buf, columns=[1])  # data written ...
    print("simulated crash: data strip updated, parity strips NOT")

    arr.fail_disk(arr.layout.disk_for(0, 0))  # an unrelated disk dies
    after = arr.read(0, code.strip_bytes)
    print(f"reconstructed unrelated column 0: "
          f"{'CORRUPTED (write hole!)' if after != before else 'intact'}")
    assert after != before

    # ---- Part 2: the journal ----------------------------------------------
    print("\njournaled array, crashing at every write position:")
    survived = 0
    for crash_after in range(6):
        arr = fresh(JournaledRAID6Array)
        arr.arm_crash(CrashPoint(crash_after))
        try:
            arr.write(ELEM * 3, payload(ELEM, seed=9))
        except SimulatedCrash:
            pass
        arr.arm_crash(None)
        replayed = arr.recover()
        consistent = all(
            arr.code.verify(arr.read_stripe(s)) for s in range(STRIPES)
        )
        assert consistent
        survived += 1
        print(f"  crash after {crash_after} strip writes: "
              f"{replayed} journal record(s) replayed, parity consistent")
    print(f"\nall {survived} crash positions recovered cleanly")


if __name__ == "__main__":
    main()
