#!/usr/bin/env python3
"""Compare the RAID-6 code zoo on the paper's three metrics.

For each code family: measured encoding complexity, average two-column
decoding complexity, and -- via a random small-write workload -- the
average number of parity elements rewritten per user element (the
update-complexity metric, which controls small-write amplification and
SSD wear).

Run:  python examples/compare_codes.py
"""

import itertools

import numpy as np

from repro import make_code
from repro.bench.report import format_table

FAMILIES = ["cauchy-rs", "evenodd", "rdp", "liberation-original", "liberation-optimal"]
K = 8


def complexity_row(name: str) -> dict:
    code = make_code(name, K)
    pairs = list(itertools.combinations(range(K), 2))
    dec = sum(code.decoding_xors(pr) for pr in pairs) / len(pairs) / (2 * code.rows)
    return {
        "code": name,
        "w": code.rows,
        "encode/bit": round(code.encoding_complexity(), 3),
        "decode/bit": round(dec, 3),
        "bound": K - 1,
    }


def update_row(name: str, n_writes: int = 500) -> dict:
    """Average parity elements rewritten per random element write."""
    code = make_code(name, K, element_size=64)
    rng = np.random.default_rng(7)
    buf = code.alloc_stripe()
    buf[:K] = rng.integers(0, 2**64, buf[:K].shape, dtype=np.uint64)
    code.encode(buf)
    total = 0
    for _ in range(n_writes):
        col = int(rng.integers(0, K))
        row = int(rng.integers(0, code.rows))
        total += code.update(
            buf, col, row, rng.integers(0, 2**64, buf[col, row].shape, dtype=np.uint64)
        )
    assert code.verify(buf)
    avg = total / n_writes
    return {
        "code": name,
        "parity elements/write": round(avg, 3),
        "write amplification": round(1 + avg, 2),
        "floor": 3.0,  # 1 data + 2 parity is the RAID-6 minimum
    }


def main() -> None:
    print(format_table(
        [complexity_row(n) for n in FAMILIES],
        title=f"XOR complexity at k = {K} (minimal p per code)",
    ))
    print(format_table(
        [update_row(n) for n in FAMILIES],
        title=f"random small writes at k = {K}: parity update cost",
    ))
    print(
        "Liberation attains the 2-parity-update lower bound on all but one\n"
        "element per column (its extra bits), so its small-write\n"
        "amplification sits at the RAID-6 floor.  EVENODD pays a full\n"
        "Q-column rewrite whenever a write lands on the adjuster diagonal,\n"
        "RDP touches a second diagonal through its P element, and Cauchy\n"
        "RS fans every data bit into its dense Q bit-matrix."
    )


if __name__ == "__main__":
    main()
