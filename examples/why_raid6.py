#!/usr/bin/env python3
"""Why RAID-6? The paper's §I motivation, quantified.

Sweeps disk capacity (at fixed per-bit unrecoverable-error rate and
MTBF) and prints the probability that a RAID-5 rebuild hits an
unrecoverable read error, plus the resulting MTTDL for RAID-5 vs
RAID-6 -- the compounding effect (growing capacity, flat error rate,
bounded transfer rate) that made two-failure tolerance mandatory.

Run:  python examples/why_raid6.py
"""

from repro.analysis import (
    DiskModel,
    mttdl_raid5,
    mttdl_raid6,
    rebuild_read_failure_probability,
)
from repro.bench.report import format_table

N_DISKS = 10  # an 8+2 group
HOURS_PER_YEAR = 24 * 365


def main() -> None:
    rows = []
    for tb in (1, 4, 8, 16, 24):
        disk = DiskModel(
            mtbf_hours=1.2e6,
            capacity_bytes=tb * 1e12,
            ure_per_bit=1e-15,  # nearline SATA spec
            rebuild_hours=2 * tb,  # transfer-rate bound: ~2h per TB
        )
        rows.append(
            {
                "disk (TB)": tb,
                "P(URE during RAID-5 rebuild)": round(
                    rebuild_read_failure_probability(disk, N_DISKS - 1), 4
                ),
                "RAID-5 MTTDL (years)": round(
                    mttdl_raid5(disk, N_DISKS) / HOURS_PER_YEAR, 1
                ),
                "RAID-6 MTTDL (years)": round(
                    mttdl_raid6(disk, N_DISKS) / HOURS_PER_YEAR
                ),
            }
        )
    print(format_table(rows, title=f"{N_DISKS}-disk group, 1e-15 UER, 1.2M h MTBF"))
    print(
        "As capacity grows the RAID-5 rebuild almost certainly hits an\n"
        "unrecoverable sector, capping its MTTDL near the time to the\n"
        "*first* disk failure.  RAID-6 absorbs exactly that event -- the\n"
        "scenario the paper's introduction calls 'common failure patterns\n"
        "in modern storage systems'."
    )


if __name__ == "__main__":
    main()
