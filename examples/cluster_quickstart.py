#!/usr/bin/env python3
"""The distributed array in one minute.

Starts ``k + 2`` strip nodes in-process (one asyncio TCP server per
column -- the same servers ``python -m repro.cli serve`` runs across
machines), stripes data over them, then plays the §I storyline at
cluster scale: kill two nodes outright, read every byte back through
degraded decoding, rebuild both columns onto replacement nodes in the
background, and prove redundancy is fully restored by killing two
*different* nodes.

Run:  python examples/cluster_quickstart.py
"""

import asyncio

import numpy as np

from repro import ClusterArray, LocalCluster, RebuildScheduler, RetryPolicy, make_code


async def demo() -> None:
    code = make_code("liberation-optimal", 4, p=5, element_size=512)
    policy = RetryPolicy(attempts=2, timeout=0.5, backoff=0.02)

    async with LocalCluster(code, n_stripes=16) as cluster:
        arr = cluster.array(policy=policy)
        print(f"cluster: {code.k}+2 strip nodes on loopback, "
              f"{arr.capacity // 1024} KiB user capacity, p = {code.p}")
        for col, (host, port) in enumerate(cluster.addresses):
            role = "P" if col == code.p_col else "Q" if col == code.q_col else f"d{col}"
            print(f"  column {role:>2} -> {host}:{port}")

        data = np.random.default_rng(42).bytes(arr.capacity)
        await arr.write(0, data)
        print(f"\nwrote {len(data)} bytes "
              f"({arr.metrics.get('full_stripe_writes')} full-stripe writes)")

        # Two failure domains go dark.
        victims = [1, code.p_col]
        for col in victims:
            await cluster.stop_node(col)
        print(f"killed nodes for columns {victims} -> {await arr.ping()}")

        back = await arr.read(0, arr.capacity)
        assert back == data, "degraded read corrupted data!"
        print("degraded read: every byte intact "
              f"(decodes={arr.metrics.get('decodes')}, "
              f"retries={arr.metrics.get('retries')})")

        # Background rebuild onto fresh nodes, while the array serves.
        for col in victims:
            address = await cluster.start_replacement(col)
            scheduler = RebuildScheduler(arr, batch_stripes=4, workers=2)
            scheduler.start(col, address)
            await arr.read(0, 2048)  # traffic keeps flowing mid-rebuild
            rebuilt = await scheduler.wait()
            cluster.promote_replacement(col)
            done, total = scheduler.progress
            print(f"rebuilt column {col}: {rebuilt} stripes ({done}/{total})")

        assert all(await arr.ping()), "replacement nodes not serving"

        # Full redundancy restored: a *different* double failure decodes.
        for col in (0, code.q_col):
            await cluster.stop_node(col)
        assert await arr.read(0, arr.capacity) == data
        print("\nkilled two different nodes -> data still byte-identical: "
              "redundancy fully restored")

        stats = await arr.stats()
        live = [n for n in stats["nodes"] if n is not None]
        served = sum(n["stats"]["counters"].get("requests_get", 0) for n in live)
        print(f"stats: {len(live)} nodes reachable, {served} GET requests served, "
              f"client counters {stats['client']['counters']}")


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
