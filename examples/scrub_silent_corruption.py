#!/usr/bin/env python3
"""Locating and repairing silent data corruption by scrubbing.

Silent corruption gives no I/O error -- the array happily serves wrong
bytes.  This example corrupts several strips (data *and* parity), shows
the damage is invisible to normal reads, then runs the scrubber, which
uses the paper's single-column error-correction procedure to locate the
corrupted strip in each stripe from the P/Q syndromes alone and repair
it in place.

Run:  python examples/scrub_silent_corruption.py
"""

from repro import FaultInjector, RAID6Array, Scrubber, make_code
from repro.array.workloads import sequential_fill


def main() -> None:
    code = make_code("liberation-optimal", 6, element_size=512)
    arr = RAID6Array(code, n_stripes=24)
    data = b""
    for op in sequential_fill(arr.capacity, arr.layout.stripe_data_bytes, seed=5):
        arr.write(op.offset, op.data)
        data += op.data

    injector = FaultInjector(arr, seed=99)
    hits = injector.corrupt_random_strips(6)
    print("silently corrupted strips (disk, stripe):", hits)

    served = arr.read(0, arr.capacity)
    wrong = served != data
    print(f"normal reads notice nothing; data is "
          f"{'WRONG' if wrong else 'coincidentally unaffected (parity strips hit)'}")

    report = Scrubber(arr).scrub()
    print(f"\nscrub: {report.stripes_scanned} scanned, "
          f"{report.stripes_corrected} corrected, "
          f"{report.stripes_uncorrectable} uncorrectable")
    for stripe, column in report.corrected:
        role = ("P" if column == code.p_col
                else "Q" if column == code.q_col
                else f"data[{column}]")
        print(f"  stripe {stripe}: column {column} ({role}) repaired")

    assert report.healthy
    assert arr.read(0, arr.capacity) == data
    print("\nall user data verified bit-perfect after scrub")

    # A second pass confirms the array is clean.
    again = Scrubber(arr).scrub()
    assert again.stripes_clean == arr.layout.n_stripes
    print("second scrub pass: everything clean")


if __name__ == "__main__":
    main()
