#!/usr/bin/env python3
"""Anatomy of the optimal schedules: the paper's p = 5 example, live.

Prints the exact XOR program Algorithm 1 emits for Liberation(5, 5) --
the 14-step, 40-XOR procedure of §III-B -- and the decode program for
the erased columns {1, 3} of §III-C, annotated with the common
expressions being shared.

Run:  python examples/schedule_anatomy.py
"""

from repro import LiberationGeometry, decode_schedule, encode_schedule


def cell_name(geo, col, row):
    if col == geo.p_col:
        return f"P[{row}]"
    if col == geo.q_col:
        return f"Q[{row}]"
    return f"d[{row},{col}]"


def print_schedule(geo, sched, title):
    print(f"\n== {title} ==")
    print(f"{len(sched)} ops = {sched.n_xors} XORs + {sched.n_copies} copies")
    for i, op in enumerate(sched):
        arrow = "<-" if op.copy else "^="
        print(f"  {i:3d}: {cell_name(geo, op.dst_col, op.dst_row):9s} {arrow} "
              f"{cell_name(geo, op.src_col, op.src_row)}")


def main() -> None:
    p = k = 5
    geo = LiberationGeometry(p, k)

    print("common expressions of Liberation(5, 5)  [paper Fig. 3]:")
    for ce in geo.common_expressions:
        print(f"  E(row {ce.row}) = d[{ce.row},{ce.left_col}] ^ "
              f"d[{ce.row},{ce.right_col}]   shared by P[{ce.row}] "
              f"and Q[{ce.q_index}]")

    enc = encode_schedule(p, k)
    print_schedule(geo, enc, "Algorithm 1: optimal encoding (40 XORs)")
    assert enc.n_xors == 2 * p * (k - 1) == 40

    dec = decode_schedule(p, k, [1, 3])
    print_schedule(
        geo, dec,
        "Algorithms 2-4: decode columns {1, 3} "
        "(41 XORs; the paper's 39 under-counts by an erratum)",
    )
    print(f"\nnormalized decode complexity: "
          f"{dec.n_xors / (2 * p) / (k - 1):.3f} (1.0 = lower bound)")


if __name__ == "__main__":
    main()
