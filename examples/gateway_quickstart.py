#!/usr/bin/env python3
"""The object gateway in one minute.

Puts named objects through :class:`repro.gateway.ObjectGateway` onto an
in-process ``k+2`` cluster: small objects pack into shared stripes, a
large one spans several, an in-place update patches bytes under the
per-stripe lock, and the per-object CRC catches a raw write made
beneath the gateway's back.  Then the workload driver replays a seeded
zipfian open-loop mix on the virtual clock -- same seed, same digest,
every run, on every machine.

Run:  python examples/gateway_quickstart.py
"""

import asyncio

from repro import LocalCluster, RetryPolicy, make_code
from repro.gateway import (
    IntegrityError,
    ObjectGateway,
    WorkloadConfig,
    run_sim_bench,
)


async def demo() -> None:
    code = make_code("liberation-optimal", 3, p=5, element_size=64)
    async with LocalCluster(code, n_stripes=12) as cluster:
        arr = cluster.array(
            policy=RetryPolicy(attempts=2, timeout=0.5, deadline=2.0)
        )
        gw = ObjectGateway(arr, cache_stripes=8, max_inflight=8)
        print(f"gateway over {code.k}+2 nodes, "
              f"{gw.stripe_bytes} B stripe payload, "
              f"{gw.allocator.capacity} B capacity")

        # Small objects pack; a big one spans stripes.
        await gw.put("config", b'{"replicas": 2}')
        await gw.put("readme", b"liberation codes, but with doors")
        big = bytes(i % 251 for i in range(2 * gw.stripe_bytes + 100))
        await gw.put("blob", big)
        for stat in await gw.list_objects():
            print(f"  {stat.name:>7}: {stat.size:5d} B in "
                  f"{stat.n_extents} extent(s), stripes {list(stat.stripes)}")
        small = [await gw.stat(n) for n in ("config", "readme")]
        assert small[0].stripes == small[1].stripes, "small objects pack"

        # RMW update: size and layout stay put, bytes and CRC move.
        await gw.update("readme", 0, b"LIBERATION")
        assert (await gw.get("readme")).startswith(b"LIBERATION")
        print("updated 'readme' in place "
              f"(still {(await gw.stat('readme')).n_extents} extent)")

        # End-to-end integrity: a raw write under the gateway is valid
        # stripe data (parity and all) -- only the object CRC sees it.
        ext = gw.index["blob"].extents[0]
        await arr.write(ext.stripe * gw.stripe_bytes + ext.start, b"\xff")
        try:
            await gw.get("blob")
            raise AssertionError("corruption went unnoticed!")
        except IntegrityError:
            print("raw write beneath the gateway -> IntegrityError on get")

        await gw.put("blob", big)  # heal by re-put
        assert await gw.get("blob") == big
        snap = gw.stats()
        print(f"healed: {snap['objects']} objects, "
              f"{snap['bytes_stored']} B stored, {snap['free_bytes']} B free")


def main() -> None:
    asyncio.run(demo())

    # The measured-load harness, sim mode: open-loop zipfian traffic on
    # the virtual clock.  Deterministic to the byte.
    cfg = WorkloadConfig(seed=7, n_objects=12, object_size=768,
                         n_ops=150, rate=3000.0)
    rep = run_sim_bench(cfg)
    again = run_sim_bench(cfg)
    print(f"\nsim workload: {rep.ok} ok / {rep.shed} shed / "
          f"{rep.errors} errors at {rep.throughput_ops:.0f} virtual ops/s")
    for row in rep.rows():
        print(f"  {row['op']:>6}: p50 {row['p50_ms']:6.2f} ms   "
              f"p99 {row['p99_ms']:6.2f} ms   ({row['count']} ops)")
    assert rep.digest == again.digest, "sim digest must be byte-stable"
    print(f"digest {rep.digest[:16]}... identical across runs")


if __name__ == "__main__":
    main()
