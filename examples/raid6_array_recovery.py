#!/usr/bin/env python3
"""Surviving the paper's §I failure scenario on the array simulator.

Builds a RAID-6 array, fills it, then plays the motivating storyline:
one whole-disk failure, a *latent sector error* discovered on another
disk during the subsequent recovery (the pattern RAID-5 cannot
survive), a second whole-disk failure, degraded service, and finally a
full rebuild -- verifying user data after every step.

Run:  python examples/raid6_array_recovery.py
"""

from repro import RAID6Array, make_code
from repro.array.workloads import payload, sequential_fill


def check(arr, data, label):
    assert arr.read(0, arr.capacity) == data, label
    print(f"  [ok] {label}")


def main() -> None:
    code = make_code("liberation-optimal", 8, element_size=1024)
    arr = RAID6Array(code, n_stripes=32)
    print(f"array: {code.k}+2 disks, {arr.capacity // 1024} KiB user capacity, "
          f"p = {code.p}")

    # Fill sequentially (full-stripe writes -> the encode fast path).
    data = b""
    for op in sequential_fill(arr.capacity, arr.layout.stripe_data_bytes, seed=1):
        arr.write(op.offset, op.data)
        data += op.data
    print(f"filled: {arr.stats.full_stripe_writes} full-stripe writes")
    check(arr, data, "initial fill reads back")

    # 1. A disk dies.
    arr.fail_disk(3)
    print(f"\ndisk 3 failed -> degraded mode")
    check(arr, data, "degraded reads reconstruct on the fly")

    # 2. During recovery traffic, a latent sector error surfaces on a
    #    *different* disk -- the double-fault pattern RAID-6 exists for.
    arr.disks[6].mark_latent_error(10)
    print("latent sector error on disk 6, strip 10")
    check(arr, data, "reads survive disk failure + medium error")

    # 3. A second disk dies outright.
    arr.fail_disk(0)
    print("disk 0 failed -> two concurrent failures")
    check(arr, data, "reads survive two whole-disk failures")

    # Degraded writes must keep everything consistent.
    patch = payload(5000, seed=7)
    arr.write(12345, patch)
    data = data[:12345] + patch + data[12345 + 5000 :]
    check(arr, data, "degraded writes remain recoverable")

    # 4. Replace and rebuild.
    rebuilt = arr.rebuild()
    print(f"\nrebuilt {rebuilt} stripes onto replacement disks")
    check(arr, data, "post-rebuild contents intact")
    assert arr.failed_disks() == []
    for s in range(arr.layout.n_stripes):
        assert arr.code.verify(arr.read_stripe(s))
    print("  [ok] every stripe parity-consistent")

    print(f"\nstats: {arr.stats}")


if __name__ == "__main__":
    main()
